(* SARIF 2.1.0 rendering of a diagnostic list, hand-rolled (the toolchain
   has no JSON library and the schema subset we emit is tiny).  The output
   is what CI uploads and what PR annotation consumes: one run, one rule
   descriptor per rule citing its paper clause, one result per diagnostic
   with the fingerprint under partialFingerprints so baselines survive
   line motion. *)

let buf_add_json_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* Minimal JSON AST: enough structure to keep the emission honest without
   string-splicing field by field. *)
type json =
  | S of string
  | I of int
  | L of json list
  | O of (string * json) list

let rec emit buf = function
  | S s -> buf_add_json_string buf s
  | I n -> Buffer.add_string buf (string_of_int n)
  | L xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          emit buf x)
        xs;
      Buffer.add_char buf ']'
  | O fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          buf_add_json_string buf k;
          Buffer.add_char buf ':';
          emit buf v)
        fields;
      Buffer.add_char buf '}'

let rule_descriptor rule =
  O
    [
      ("id", S (Diag.rule_name rule));
      ("name", S (Diag.rule_title rule));
      ( "shortDescription",
        O [ ("text", S (Diag.rule_title rule)) ] );
      ( "fullDescription",
        O [ ("text", S (Diag.paper_clause rule)) ] );
    ]

let result (d : Diag.t) =
  O
    [
      ("ruleId", S (Diag.rule_name d.Diag.rule));
      ("level", S "error");
      ("message", O [ ("text", S d.Diag.msg) ]);
      ( "locations",
        L
          [
            O
              [
                ( "physicalLocation",
                  O
                    [
                      ( "artifactLocation",
                        O [ ("uri", S d.Diag.file) ] );
                      ( "region",
                        O
                          [
                            ("startLine", I d.Diag.line);
                            ("startColumn", I (d.Diag.col + 1));
                          ] );
                    ] );
              ];
          ] );
      ( "partialFingerprints",
        O [ ("mrdbLint/v1", S d.Diag.fp) ] );
    ]

let render (diags : Diag.t list) =
  let doc =
    O
      [
        ( "$schema",
          S
            "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json"
        );
        ("version", S "2.1.0");
        ( "runs",
          L
            [
              O
                [
                  ( "tool",
                    O
                      [
                        ( "driver",
                          O
                            [
                              ("name", S "mrdb_lint");
                              ("informationUri", S "DESIGN.md");
                              ( "rules",
                                L (List.map rule_descriptor Diag.all_rules) );
                            ] );
                      ] );
                  ("results", L (List.map result diags));
                ];
            ] );
      ]
  in
  let buf = Buffer.create 4096 in
  emit buf doc;
  Buffer.add_char buf '\n';
  Buffer.contents buf
