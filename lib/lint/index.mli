(** Phase 1 of the two-phase analyzer: a syntactic whole-program index.

    One pass per file distills what the interprocedural rules (R8-R11)
    consume: per-top-level-binding reference lists (the raw edges of the
    call graph), raise sites, record-field writes, wildcard exception
    handlers, and per-module declarations (exceptions, mutable record
    fields, module aliases, opens).  No typechecking — identifiers are
    recorded as spelled and resolved later by {!Callgraph}. *)

type raise_arg =
  | Constructs of string list
      (** [raise (Exn ...)]: the flattened constructor path *)
  | Reraise  (** [raise e]: re-raise of a caught variable — always legal *)
  | Opaque  (** [raise (f x)]: a computed exception the analyzer cannot name *)

type raise_site = { r_arg : raise_arg; r_loc : Location.t }

type binding = {
  b_name : string;
      (** top-level value name; submodule members are dotted
          (["Manager.commit"]) *)
  b_loc : Location.t;
  b_refs : (string list * Location.t) list;
      (** every flattened identifier referenced in the body, in order *)
  b_raises : raise_site list;
  b_setfields : (string list * Location.t) list;
      (** record fields assigned ([x.f <- ...]) *)
  b_wildcards : Location.t list;  (** [try ... with _ ->] sites *)
  b_sorts : bool;
      (** the body references [List.sort]/[Array.sort] family — the
          "call site sorts" escape for unordered-iteration diagnostics *)
}

type modinfo = {
  m_rel : string;  (** path relative to the linted root, e.g. ["wal/slb.ml"] *)
  m_lib : string option;  (** wrapped library name, from the directory *)
  m_name : string;  (** OCaml module name, e.g. ["Slb"] *)
  m_aliases : (string * string list) list;
      (** top-level [module S = Path] aliases *)
  m_opens : string list list;  (** top-level [open Path] directives, in order *)
  m_bindings : binding list;
  m_exceptions : string list;  (** exception names declared in the file *)
  m_exn_aliases : (string * string list) list;
      (** [exception E = Path.E] re-exports — resolution follows the
          alias to the original declaration site *)
  m_mutable_fields : string list;
      (** names of record fields declared [mutable] in the file *)
}

type t = modinfo list

val module_name_of_rel : string -> string
(** ["storage/catalog.ml"] -> ["Catalog"]. *)

val of_structure : rel:string -> lib:string option -> Parsetree.structure -> modinfo

val find_module : t -> rel:string -> modinfo option
val find_binding : modinfo -> string -> binding option
val modules_named : t -> string -> modinfo list
val declares_exception : modinfo -> string -> bool
