(** The declared architecture mrdb_lint enforces.

    Rule set (each diagnostic cites the paper clause it protects):
    - {b R1 wild-write discipline}: the mutating [Stable_mem] API is legal
      only in [mrdb_wal] and [recovery/wellknown.ml] (and the defining
      module itself).
    - {b R2 layering}: [Mrdb_*] references must follow the declared
      dependency order; in particular [mrdb_recovery] never references
      [mrdb_core].
    - {b R3 partiality}: bare [failwith] / [invalid_arg] / [assert false] /
      [Option.get] / [List.hd] are banned under [lib/] outside
      [util/fatal.ml].
    - {b R4 sealed interfaces}: every [lib/**/*.ml] has a matching [.mli].
    - {b R5 fault-injection containment}: arming fault hooks and
      fabricating device failures/corruption is legal only under
      [lib/fault/] and in the defining hardware modules (tests are outside
      [lib/] and exempt).
    - {b R6 output discipline}: bare [Printf.printf] / [print_string] /
      [print_endline] / [print_newline] are banned under [lib/] outside
      [lib/obs/] and [util/texttab.ml] — library code renders through
      [Mrdb_obs.Export] or [Mrdb_util.Texttab]; only binaries print.
    - {b R7 SLB region ownership}: [Slb.append] / [Slb.Region.append] call
      sites are confined to [core/db_system.ml] (the per-executor redo
      sink) and [lib/wal/] — each striped region is appended only by its
      owning executor's logging path.

    Interprocedural rules (run on the whole-program call graph built by
    {!Index} + {!Callgraph}, configured by {!type:config}):
    - {b R8 determinism}: no function reachable from a commit/drain/recovery
      entry point may touch a nondeterminism source ([Random], wall
      clocks, polymorphic hashing, unordered [Hashtbl] iteration) unless
      the call site sorts or carries a justified allowlist entry.
    - {b R9 ownership}: writes to registered shared mutable state must
      resolve — via the call graph, not per-file paths — to the declared
      owning module.
    - {b R10 structured raises}: every [raise] must construct a declared
      structured exception (or re-raise); [try ... with _ ->] wildcards
      are flagged.
    - {b R11 allowlist hygiene}: every allowlist/registry entry in the
      configuration must still name a real file, binding and identifier. *)

val libraries : (string * string) list
(** Directory under [lib/] -> wrapped library name. *)

val library_of_dir : string -> string option
val is_known_library : string -> bool

val allowed_deps : (string * string list) list
(** Library -> mrdb libraries it may reference (mirrors the dune files;
    the absence of [mrdb_core] under [mrdb_recovery] is the paper's 2.3
    two-CPU seam). *)

val may_depend : from:string -> target:string -> bool

val stable_mem_mutators : string list
val wild_write_allowed : string -> bool
(** [wild_write_allowed rel] — [rel] relative to [lib/]. *)

val banned_ident : string list -> string option
(** [banned_ident path] is [Some display_name] when the flattened
    identifier path is a banned partial function. *)

val partiality_allowed : string -> bool
(** The whitelisted escape hatch, [util/fatal.ml]. *)

val fault_injection_idents : (string * string list) list
(** Module -> injection functions ([Disk] -> [fail], ...); query calls are
    deliberately absent. *)

val fault_injection_allowed : string -> bool
(** [fault_injection_allowed rel] — [rel] relative to [lib/]. *)

val print_idents : (string list * string) list
(** Banned implicit-stdout printers (identifier path, display name);
    formatter-taking [Format] functions are deliberately absent. *)

val print_ident : string list -> string option
(** [print_ident path] is [Some display_name] when the flattened
    identifier path is a banned printer. *)

val print_allowed : string -> bool
(** [print_allowed rel] — [rel] relative to [lib/]: the [obs/] renderers
    and [util/texttab.ml]. *)

val slb_append_allowed : string -> bool
(** [slb_append_allowed rel] — [rel] relative to [lib/]: the WAL component
    itself and [core/db_system.ml], the per-executor redo sink that routes
    each transaction's records to its executor's SLB region. *)

(** {2 Interprocedural configuration (R8-R11)} *)

type nondet = Clock | Random_src | Poly_hash | Unordered_iter

val nondet_ident : string list -> (nondet * string) option
(** Classify a flattened reference as a nondeterminism source; returns the
    kind and a display name ("Sys.time", "Hashtbl.fold", ...). *)

type entry_point = { e_rel : string; e_binding : string }

type allow = {
  a_rel : string;  (** file, relative to the linted root *)
  a_binding : string;  (** top-level (possibly dotted) binding name *)
  a_ident : string;  (** display name of the tolerated identifier *)
  a_why : string;  (** human justification, surfaced by R11 *)
}

type resource = {
  res_name : string;
  res_write_idents : (string * string) list;
      (** (module-anywhere-in-path, function) write calls, matched like R7 *)
  res_fields : string list;
      (** mutable record fields whose [<-] counts as a write *)
  res_owners : string list;
      (** owning rel prefixes (["wal/"]) or exact files *)
}

type exn_decl = { x_rel : string; x_name : string }

type config = {
  r8_entry_points : entry_point list;
  r8_allow : allow list;
  r8_random_ok : string list;
      (** files where [Random]-family references are legal (the seeded
          executor streams and the splitmix implementation itself) *)
  r9_resources : resource list;
  r10_exceptions : exn_decl list;  (** the sanctioned structured exceptions *)
  r10_stdlib_exceptions : string list;  (** e.g. [Not_found], [Exit] *)
  r10_raise_ok : string list;  (** files exempt from the raise registry *)
  r10_wildcard_allow : allow list;
      (** justified [try ... with _ ->] sites, keyed by file + binding *)
}

val owner_matches : string list -> string -> bool
(** [owner_matches owners rel]: [rel] equals an entry or extends a
    ["dir/"]-style prefix entry. *)

val write_ident_call : resource -> string list -> string option
(** Does the flattened path contain one of the resource's write calls?
    Returns the display name. *)

val default_config : config
(** The real tree's configuration; every allow entry carries its
    justification and is validated by R11 against the live index. *)
