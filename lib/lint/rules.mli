(** The declared architecture mrdb_lint enforces.

    Rule set (each diagnostic cites the paper clause it protects):
    - {b R1 wild-write discipline}: the mutating [Stable_mem] API is legal
      only in [mrdb_wal] and [recovery/wellknown.ml] (and the defining
      module itself).
    - {b R2 layering}: [Mrdb_*] references must follow the declared
      dependency order; in particular [mrdb_recovery] never references
      [mrdb_core].
    - {b R3 partiality}: bare [failwith] / [invalid_arg] / [assert false] /
      [Option.get] / [List.hd] are banned under [lib/] outside
      [util/fatal.ml].
    - {b R4 sealed interfaces}: every [lib/**/*.ml] has a matching [.mli].
    - {b R5 fault-injection containment}: arming fault hooks and
      fabricating device failures/corruption is legal only under
      [lib/fault/] and in the defining hardware modules (tests are outside
      [lib/] and exempt).
    - {b R6 output discipline}: bare [Printf.printf] / [print_string] /
      [print_endline] / [print_newline] are banned under [lib/] outside
      [lib/obs/] and [util/texttab.ml] — library code renders through
      [Mrdb_obs.Export] or [Mrdb_util.Texttab]; only binaries print.
    - {b R7 SLB region ownership}: [Slb.append] / [Slb.Region.append] call
      sites are confined to [core/db_system.ml] (the per-executor redo
      sink) and [lib/wal/] — each striped region is appended only by its
      owning executor's logging path. *)

val libraries : (string * string) list
(** Directory under [lib/] -> wrapped library name. *)

val library_of_dir : string -> string option
val is_known_library : string -> bool

val allowed_deps : (string * string list) list
(** Library -> mrdb libraries it may reference (mirrors the dune files;
    the absence of [mrdb_core] under [mrdb_recovery] is the paper's 2.3
    two-CPU seam). *)

val may_depend : from:string -> target:string -> bool

val stable_mem_mutators : string list
val wild_write_allowed : string -> bool
(** [wild_write_allowed rel] — [rel] relative to [lib/]. *)

val banned_ident : string list -> string option
(** [banned_ident path] is [Some display_name] when the flattened
    identifier path is a banned partial function. *)

val partiality_allowed : string -> bool
(** The whitelisted escape hatch, [util/fatal.ml]. *)

val fault_injection_idents : (string * string list) list
(** Module -> injection functions ([Disk] -> [fail], ...); query calls are
    deliberately absent. *)

val fault_injection_allowed : string -> bool
(** [fault_injection_allowed rel] — [rel] relative to [lib/]. *)

val print_idents : (string list * string) list
(** Banned implicit-stdout printers (identifier path, display name);
    formatter-taking [Format] functions are deliberately absent. *)

val print_ident : string list -> string option
(** [print_ident path] is [Some display_name] when the flattened
    identifier path is a banned printer. *)

val print_allowed : string -> bool
(** [print_allowed rel] — [rel] relative to [lib/]: the [obs/] renderers
    and [util/texttab.ml]. *)

val slb_append_allowed : string -> bool
(** [slb_append_allowed rel] — [rel] relative to [lib/]: the WAL component
    itself and [core/db_system.ml], the per-executor redo sink that routes
    each transaction's records to its executor's SLB region. *)
