(** SARIF 2.1.0 rendering for [mrdb_lint --format json].

    One run, one rule descriptor per rule (its [fullDescription] is the
    paper clause the rule protects), one result per diagnostic.  The
    diagnostic fingerprint is emitted under
    [partialFingerprints.mrdbLint/v1] so CI baselining survives line
    motion. *)

val render : Diag.t list -> string
(** The complete SARIF document, newline-terminated. *)
