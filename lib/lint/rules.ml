(* The declared architecture.  This table is the single place the rules
   live; mrdb_lint enforces it against the sources, so editing a dune file
   (or adding a library) without updating — and thereby re-reviewing — the
   declared order is itself a violation. *)

(* -- library universe ------------------------------------------------------ *)

(* Directory under lib/ -> library name, mirroring the dune stanzas. *)
let libraries =
  [
    ("util", "mrdb_util");
    ("sim", "mrdb_sim");
    ("obs", "mrdb_obs");
    ("exec", "mrdb_exec");
    ("hw", "mrdb_hw");
    ("fault", "mrdb_fault");
    ("storage", "mrdb_storage");
    ("index", "mrdb_index");
    ("txn", "mrdb_txn");
    ("wal", "mrdb_wal");
    ("ckpt", "mrdb_ckpt");
    ("analysis", "mrdb_analysis");
    ("archive", "mrdb_archive");
    ("recovery", "mrdb_recovery");
    ("core", "mrdb_core");
    ("lint", "mrdb_lint");
  ]

let library_of_dir dir = List.assoc_opt dir libraries
let is_known_library name = List.exists (fun (_, l) -> l = name) libraries

(* R2: the declared dependency order (util -> hw/sim -> wal/storage/txn/index
   -> ckpt/archive -> recovery -> core).  Each entry lists the mrdb libraries
   a library may reference — the transitively-closed mirror of the dune
   [libraries] fields.  The seam the paper's 2.3 two-CPU split depends on is
   visible here as an absence: [mrdb_recovery] must never reach up into
   [mrdb_core]. *)
let allowed_deps =
  [
    ("mrdb_util", []);
    ("mrdb_sim", [ "mrdb_util" ]);
    ("mrdb_obs", [ "mrdb_util"; "mrdb_sim" ]);
    ("mrdb_exec", [ "mrdb_util" ]);
    ("mrdb_hw", [ "mrdb_util"; "mrdb_sim" ]);
    ("mrdb_fault", [ "mrdb_util"; "mrdb_sim"; "mrdb_obs"; "mrdb_hw" ]);
    ("mrdb_storage", [ "mrdb_util"; "mrdb_hw" ]);
    ("mrdb_index", [ "mrdb_util"; "mrdb_storage" ]);
    ("mrdb_txn", [ "mrdb_util"; "mrdb_hw"; "mrdb_obs"; "mrdb_storage" ]);
    ("mrdb_wal", [ "mrdb_util"; "mrdb_sim"; "mrdb_obs"; "mrdb_hw"; "mrdb_storage" ]);
    ("mrdb_ckpt", [ "mrdb_util"; "mrdb_sim"; "mrdb_hw"; "mrdb_storage" ]);
    ("mrdb_analysis", [ "mrdb_util" ]);
    ("mrdb_archive", [ "mrdb_util"; "mrdb_storage"; "mrdb_wal"; "mrdb_ckpt" ]);
    ( "mrdb_recovery",
      [
        "mrdb_util";
        "mrdb_sim";
        "mrdb_obs";
        "mrdb_hw";
        "mrdb_storage";
        "mrdb_wal";
        "mrdb_txn";
        "mrdb_ckpt";
        "mrdb_archive";
      ] );
    ( "mrdb_core",
      [
        "mrdb_util";
        "mrdb_sim";
        "mrdb_obs";
        "mrdb_exec";
        "mrdb_hw";
        "mrdb_storage";
        "mrdb_index";
        "mrdb_txn";
        "mrdb_wal";
        "mrdb_ckpt";
        "mrdb_recovery";
        "mrdb_archive";
      ] );
    ("mrdb_lint", [ "mrdb_util" ]);
  ]

let may_depend ~from ~target =
  match List.assoc_opt from allowed_deps with
  | None -> false
  | Some deps -> List.mem target deps

(* -- R1: wild-write discipline --------------------------------------------- *)

(* The mutating half of the Stable_mem API.  Reads are legal anywhere. *)
let stable_mem_mutators = [ "write"; "write_sub"; "fill"; "put_u32"; "put_i64" ]

(* Files allowed to write stable memory raw (paths relative to lib/):
   the WAL components (SLB, SLT, partition bins, the stable layout), the
   recovery manager's well-known region, and the defining module itself. *)
let wild_write_allowed rel =
  String.length rel >= 4
  && String.sub rel 0 4 = "wal/"
  || rel = "recovery/wellknown.ml"
  || rel = "hw/stable_mem.ml"

(* -- R3: partiality --------------------------------------------------------- *)

(* Banned identifier paths (each with its [Stdlib]-qualified spelling). *)
let banned_idents =
  [
    ([ "failwith" ], "failwith");
    ([ "Stdlib"; "failwith" ], "failwith");
    ([ "invalid_arg" ], "invalid_arg");
    ([ "Stdlib"; "invalid_arg" ], "invalid_arg");
    ([ "Option"; "get" ], "Option.get");
    ([ "Stdlib"; "Option"; "get" ], "Option.get");
    ([ "List"; "hd" ], "List.hd");
    ([ "Stdlib"; "List"; "hd" ], "List.hd");
  ]

let banned_ident path =
  let rec find = function
    | [] -> None
    | (p, name) :: rest -> if p = path then Some name else find rest
  in
  find banned_idents

(* The one sanctioned escape hatch (relative to lib/). *)
let partiality_allowed rel = rel = "util/fatal.ml"

(* -- R5: fault-injection containment ---------------------------------------- *)

(* The injection half of the hardware API: arming hooks and fabricating
   failures or corruption.  Query/observation calls (Disk.failed,
   Duplex.state) are legal anywhere. *)
let fault_injection_idents =
  [
    ("Disk", [ "set_fault_hook"; "corrupt_page"; "fail" ]);
    ("Duplex", [ "fail_primary"; "fail_mirror" ]);
    ("Stable_mem", [ "set_fault_hook"; "corrupt" ]);
  ]

(* Who may inject (relative to lib/): the fault subsystem itself and the
   defining hardware modules (Duplex fails its member Disk; each module
   implements its own injection surface).  Tests live outside lib/ and are
   not linted, so they stay free to inject. *)
let fault_injection_allowed rel =
  (String.length rel >= 6 && String.sub rel 0 6 = "fault/")
  || rel = "hw/disk.ml" || rel = "hw/duplex.ml" || rel = "hw/stable_mem.ml"

(* -- R6: output discipline --------------------------------------------------- *)

(* Bare stdout printers (each with its [Stdlib]-qualified spelling).
   [Format.pp_print_string ppf] and friends take an explicit formatter and
   stay legal — only the implicit-stdout forms are banned. *)
let print_idents =
  [
    ([ "Printf"; "printf" ], "Printf.printf");
    ([ "Stdlib"; "Printf"; "printf" ], "Printf.printf");
    ([ "print_string" ], "print_string");
    ([ "Stdlib"; "print_string" ], "print_string");
    ([ "print_endline" ], "print_endline");
    ([ "Stdlib"; "print_endline" ], "print_endline");
    ([ "print_newline" ], "print_newline");
    ([ "Stdlib"; "print_newline" ], "print_newline");
  ]

let print_ident path =
  let rec find = function
    | [] -> None
    | (p, name) :: rest -> if p = path then Some name else find rest
  in
  find print_idents

(* Who may print (relative to lib/): the observability subsystem's
   renderers and the table renderer itself.  Binaries, benches and tests
   live outside lib/ and are not linted. *)
let print_allowed rel =
  (String.length rel >= 4 && String.sub rel 0 4 = "obs/") || rel = "util/texttab.ml"

(* -- R7: SLB region ownership ------------------------------------------------ *)

(* Each striped SLB region belongs to one executor; every append must funnel
   through the per-executor redo sink in core/db_system.ml (which routes a
   transaction's records to its executor's region) or stay inside the WAL
   component that defines the regions.  Confined call sites keep the
   region-ownership invariant auditable: no other layer can interleave
   records into a region it does not own. *)
let slb_append_allowed rel =
  (String.length rel >= 4 && String.sub rel 0 4 = "wal/")
  || rel = "core/db_system.ml"
