(* The declared architecture.  This table is the single place the rules
   live; mrdb_lint enforces it against the sources, so editing a dune file
   (or adding a library) without updating — and thereby re-reviewing — the
   declared order is itself a violation. *)

(* -- library universe ------------------------------------------------------ *)

(* Directory under lib/ -> library name, mirroring the dune stanzas. *)
let libraries =
  [
    ("util", "mrdb_util");
    ("sim", "mrdb_sim");
    ("obs", "mrdb_obs");
    ("exec", "mrdb_exec");
    ("hw", "mrdb_hw");
    ("fault", "mrdb_fault");
    ("storage", "mrdb_storage");
    ("index", "mrdb_index");
    ("logical", "mrdb_logical");
    ("txn", "mrdb_txn");
    ("wal", "mrdb_wal");
    ("ckpt", "mrdb_ckpt");
    ("analysis", "mrdb_analysis");
    ("archive", "mrdb_archive");
    ("recovery", "mrdb_recovery");
    ("core", "mrdb_core");
    ("replica", "mrdb_replica");
    ("lint", "mrdb_lint");
  ]

let library_of_dir dir = List.assoc_opt dir libraries
let is_known_library name = List.exists (fun (_, l) -> l = name) libraries

(* R2: the declared dependency order (util -> hw/sim -> wal/storage/txn/index
   -> ckpt/archive -> recovery -> core).  Each entry lists the mrdb libraries
   a library may reference — the transitively-closed mirror of the dune
   [libraries] fields.  The seam the paper's 2.3 two-CPU split depends on is
   visible here as an absence: [mrdb_recovery] must never reach up into
   [mrdb_core]. *)
let allowed_deps =
  [
    ("mrdb_util", []);
    ("mrdb_sim", [ "mrdb_util" ]);
    ("mrdb_obs", [ "mrdb_util"; "mrdb_sim" ]);
    ("mrdb_exec", [ "mrdb_util" ]);
    ("mrdb_hw", [ "mrdb_util"; "mrdb_sim" ]);
    ("mrdb_fault", [ "mrdb_util"; "mrdb_sim"; "mrdb_obs"; "mrdb_hw" ]);
    ("mrdb_storage", [ "mrdb_util"; "mrdb_hw" ]);
    ("mrdb_index", [ "mrdb_util"; "mrdb_storage" ]);
    (* The logical-command codec sits directly on storage: command records
       replay through Relation/Partition, and nothing below the WAL may
       know about record framing. *)
    ("mrdb_logical", [ "mrdb_util"; "mrdb_storage" ]);
    ("mrdb_txn", [ "mrdb_util"; "mrdb_hw"; "mrdb_obs"; "mrdb_storage" ]);
    ( "mrdb_wal",
      [ "mrdb_util"; "mrdb_sim"; "mrdb_obs"; "mrdb_hw"; "mrdb_storage";
        "mrdb_logical" ] );
    ("mrdb_ckpt", [ "mrdb_util"; "mrdb_sim"; "mrdb_hw"; "mrdb_storage" ]);
    ("mrdb_analysis", [ "mrdb_util" ]);
    ("mrdb_archive", [ "mrdb_util"; "mrdb_storage"; "mrdb_wal"; "mrdb_ckpt" ]);
    ( "mrdb_recovery",
      [
        "mrdb_util";
        "mrdb_sim";
        "mrdb_obs";
        "mrdb_hw";
        "mrdb_storage";
        "mrdb_logical";
        "mrdb_wal";
        "mrdb_txn";
        "mrdb_ckpt";
        "mrdb_archive";
      ] );
    ( "mrdb_core",
      [
        "mrdb_util";
        "mrdb_sim";
        "mrdb_obs";
        "mrdb_exec";
        "mrdb_hw";
        "mrdb_storage";
        "mrdb_index";
        "mrdb_logical";
        "mrdb_txn";
        "mrdb_wal";
        "mrdb_ckpt";
        "mrdb_recovery";
        "mrdb_archive";
      ] );
    (* The replica sits above core (it drives two Db instances) but below
       nothing: no library may depend back on it, so the single-node build
       is never entangled with replication. *)
    ( "mrdb_replica",
      [
        "mrdb_util";
        "mrdb_sim";
        "mrdb_obs";
        "mrdb_hw";
        "mrdb_storage";
        "mrdb_wal";
        "mrdb_ckpt";
        "mrdb_recovery";
        "mrdb_core";
        "mrdb_fault";
      ] );
    ("mrdb_lint", [ "mrdb_util" ]);
  ]

let may_depend ~from ~target =
  match List.assoc_opt from allowed_deps with
  | None -> false
  | Some deps -> List.mem target deps

(* -- R1: wild-write discipline --------------------------------------------- *)

(* The mutating half of the Stable_mem API.  Reads are legal anywhere. *)
let stable_mem_mutators = [ "write"; "write_sub"; "fill"; "put_u32"; "put_i64" ]

(* Files allowed to write stable memory raw (paths relative to lib/):
   the WAL components (SLB, SLT, partition bins, the stable layout), the
   recovery manager's well-known region, the defining module itself, and
   the standby batch-install path — the ONLY place replication may write
   a shipped stable image. *)
let wild_write_allowed rel =
  String.length rel >= 4
  && String.sub rel 0 4 = "wal/"
  || rel = "recovery/wellknown.ml"
  || rel = "hw/stable_mem.ml"
  || rel = "replica/apply.ml"

(* -- R3: partiality --------------------------------------------------------- *)

(* Banned identifier paths (each with its [Stdlib]-qualified spelling). *)
let banned_idents =
  [
    ([ "failwith" ], "failwith");
    ([ "Stdlib"; "failwith" ], "failwith");
    ([ "invalid_arg" ], "invalid_arg");
    ([ "Stdlib"; "invalid_arg" ], "invalid_arg");
    ([ "Option"; "get" ], "Option.get");
    ([ "Stdlib"; "Option"; "get" ], "Option.get");
    ([ "List"; "hd" ], "List.hd");
    ([ "Stdlib"; "List"; "hd" ], "List.hd");
  ]

let banned_ident path =
  let rec find = function
    | [] -> None
    | (p, name) :: rest -> if p = path then Some name else find rest
  in
  find banned_idents

(* The one sanctioned escape hatch (relative to lib/). *)
let partiality_allowed rel = rel = "util/fatal.ml"

(* -- R5: fault-injection containment ---------------------------------------- *)

(* The injection half of the hardware API: arming hooks and fabricating
   failures or corruption.  Query/observation calls (Disk.failed,
   Duplex.state) are legal anywhere. *)
let fault_injection_idents =
  [
    ("Disk", [ "set_fault_hook"; "corrupt_page"; "fail" ]);
    ("Duplex", [ "fail_primary"; "fail_mirror" ]);
    ("Stable_mem", [ "set_fault_hook"; "corrupt" ]);
    ("Ship_channel", [ "set_extra_delay"; "set_drop" ]);
  ]

(* Who may inject (relative to lib/): the fault subsystem itself and the
   defining hardware modules (Duplex fails its member Disk; each module
   implements its own injection surface).  Tests live outside lib/ and are
   not linted, so they stay free to inject. *)
let fault_injection_allowed rel =
  (String.length rel >= 6 && String.sub rel 0 6 = "fault/")
  || rel = "hw/disk.ml" || rel = "hw/duplex.ml" || rel = "hw/stable_mem.ml"
  || rel = "hw/ship_channel.ml"

(* -- R6: output discipline --------------------------------------------------- *)

(* Bare stdout printers (each with its [Stdlib]-qualified spelling).
   [Format.pp_print_string ppf] and friends take an explicit formatter and
   stay legal — only the implicit-stdout forms are banned. *)
let print_idents =
  [
    ([ "Printf"; "printf" ], "Printf.printf");
    ([ "Stdlib"; "Printf"; "printf" ], "Printf.printf");
    ([ "print_string" ], "print_string");
    ([ "Stdlib"; "print_string" ], "print_string");
    ([ "print_endline" ], "print_endline");
    ([ "Stdlib"; "print_endline" ], "print_endline");
    ([ "print_newline" ], "print_newline");
    ([ "Stdlib"; "print_newline" ], "print_newline");
  ]

let print_ident path =
  let rec find = function
    | [] -> None
    | (p, name) :: rest -> if p = path then Some name else find rest
  in
  find print_idents

(* Who may print (relative to lib/): the observability subsystem's
   renderers and the table renderer itself.  Binaries, benches and tests
   live outside lib/ and are not linted. *)
let print_allowed rel =
  (String.length rel >= 4 && String.sub rel 0 4 = "obs/") || rel = "util/texttab.ml"

(* -- R8: nondeterminism sources ---------------------------------------------- *)

type nondet = Clock | Random_src | Poly_hash | Unordered_iter

(* Classify a flattened reference as a nondeterminism source.  Matching
   scans the whole path, so [Stdlib.Hashtbl.fold], [Hashtbl.fold] and
   [Mrdb_foo.Hashtbl.fold] all hit; [Mrdb_util.Rng] (our seeded
   splitmix64) deliberately does not. *)
let nondet_ident path =
  let rec scan = function
    | "Random" :: _ -> Some (Random_src, "Random")
    | "Unix" :: (("gettimeofday" | "time" | "times") as f) :: _ ->
        Some (Clock, "Unix." ^ f)
    | "Sys" :: "time" :: _ -> Some (Clock, "Sys.time")
    | "Sim" :: "now" :: _ -> Some (Clock, "Sim.now")
    | "Hashtbl" :: (("hash" | "hash_param" | "seeded_hash") as f) :: _ ->
        Some (Poly_hash, "Hashtbl." ^ f)
    | "Hashtbl"
      :: (("iter" | "fold" | "to_seq" | "to_seq_keys" | "to_seq_values") as f)
      :: _ ->
        Some (Unordered_iter, "Hashtbl." ^ f)
    | _ :: rest -> scan rest
    | [] -> None
  in
  scan path

(* -- interprocedural configuration (R8-R11) ---------------------------------- *)

type entry_point = { e_rel : string; e_binding : string }

type allow = {
  a_rel : string;
  a_binding : string;
  a_ident : string;
  a_why : string;
}

type resource = {
  res_name : string;
  res_write_idents : (string * string) list;
      (* (module-anywhere-in-path, function) pairs, matched like R7 *)
  res_fields : string list;  (* mutable record fields whose [<-] is a write *)
  res_owners : string list;  (* rel prefixes ("wal/") or exact files *)
}

type exn_decl = { x_rel : string; x_name : string }

type config = {
  r8_entry_points : entry_point list;
  r8_allow : allow list;
  r8_random_ok : string list;
  r9_resources : resource list;
  r10_exceptions : exn_decl list;
  r10_stdlib_exceptions : string list;
  r10_raise_ok : string list;
  r10_wildcard_allow : allow list;
}

let owner_matches owners rel =
  List.exists
    (fun o ->
      o = rel
      || (String.length o > 0
          && o.[String.length o - 1] = '/'
          && String.length rel >= String.length o
          && String.sub rel 0 (String.length o) = o))
    owners

let write_ident_call res path =
  let rec scan = function
    | m :: f :: _ when List.mem (m, f) res.res_write_idents ->
        Some (m ^ "." ^ f)
    | _ :: rest -> scan rest
    | [] -> None
  in
  scan path

let default_config =
  {
    (* R8 roots: the commit path (facade -> per-executor redo sink), the
       sorter's drain, and the recovery restart path.  Everything these
       reach must be replay-deterministic. *)
    r8_entry_points =
      [
        { e_rel = "core/db.ml"; e_binding = "commit" };
        { e_rel = "core/db.ml"; e_binding = "with_txn" };
        { e_rel = "core/db.ml"; e_binding = "begin_txn" };
        { e_rel = "core/db_system.ml"; e_binding = "user_sink" };
        { e_rel = "core/db_system.ml"; e_binding = "with_system_txn" };
        { e_rel = "core/db_system.ml"; e_binding = "drain" };
        { e_rel = "recovery/recovery_mgr.ml"; e_binding = "restart" };
        { e_rel = "recovery/log_sorter.ml"; e_binding = "drain" };
        { e_rel = "recovery/log_sorter.ml"; e_binding = "sort_backlog" };
        { e_rel = "recovery/restorer.ml"; e_binding = "ensure_partition" };
        { e_rel = "recovery/restorer.ml"; e_binding = "restore_catalog" };
        { e_rel = "recovery/restorer.ml"; e_binding = "background_step" };
      ];
    (* Each entry is a justified suppression; R11 fails the build the
       moment the file, binding or identifier it cites stops existing, so
       none of these can go stale silently. *)
    r8_allow =
      [
        (* Sim.now is the discrete-event simulated clock: a pure function
           of the event schedule, not wall time.  It is classified as a
           Clock source anyway so every read on the deterministic path
           carries an explicit justification that the value feeds
           accounting or observability, never an exported ordering. *)
        {
          a_rel = "core/db.ml";
          a_binding = "observe_txn_latency";
          a_ident = "Sim.now";
          a_why = "simulated-clock latency sample; feeds obs histograms only";
        };
        {
          a_rel = "core/db.ml";
          a_binding = "commit";
          a_ident = "Sim.now";
          (* Group commit: the precommit timestamp paired with each queued
             transaction, and the flush deadline scheduled from it — both
             against the deterministic simulated clock. *)
          a_why = "group enqueue timestamp + deadline on the simulated clock";
        };
        {
          a_rel = "core/db.ml";
          a_binding = "flush_pending";
          a_ident = "Sim.now";
          a_why = "group-wait histogram sample on the simulated clock; obs only";
        };
        {
          a_rel = "hw/disk.ml";
          a_binding = "service";
          a_ident = "Sim.now";
          a_why = "device service-time accounting on the simulated clock";
        };
        {
          a_rel = "recovery/recovery_mgr.ml";
          a_binding = "restart";
          a_ident = "Sim.now";
          a_why = "recovery timeline timestamps on the simulated clock; obs only";
        };
        {
          a_rel = "recovery/restorer.ml";
          a_binding = "recover_partition";
          a_ident = "Sim.now";
          a_why = "restore-latency measurement on the simulated clock; obs only";
        };
        {
          a_rel = "sim/cpu.ml";
          a_binding = "enqueue";
          a_ident = "Sim.now";
          a_why = "instruction-time accounting on the simulated clock";
        };
        {
          a_rel = "sim/cpu.ml";
          a_binding = "execute";
          a_ident = "Sim.now";
          a_why = "instruction-time accounting on the simulated clock";
        };
        {
          a_rel = "txn/txn.ml";
          a_binding = "Manager.abort";
          a_ident = "Hashtbl.iter";
          (* Iterates the touched-segment set to invalidate index overlay
             caches; invalidation is idempotent and per-segment, so the
             visit order is unobservable. *)
          a_why = "overlay invalidation is idempotent; visit order unobservable";
        };
        {
          a_rel = "txn/txn.ml";
          a_binding = "Manager.active_count";
          a_ident = "Hashtbl.fold";
          (* Folds to a commutative count — the result is order-free. *)
          a_why = "commutative count; fold order cannot be observed";
        };
      ];
    r8_random_ok = [ "exec/executor.ml"; "util/rng.ml" ];
    (* R9: the shared-mutable-state registry.  Every write site must
       either live in the owning module or be reachable only through it
       (checked on the call graph, not per-file paths like R7). *)
    r9_resources =
      [
        {
          res_name = "catalog descriptors";
          res_write_idents = [];
          res_fields =
            [ "indices"; "partitions"; "ckpt_page"; "ckpt_page_count"; "resident" ];
          res_owners = [ "storage/catalog.ml" ];
        };
        {
          res_name = "relation runtimes";
          res_write_idents = [];
          res_fields = [ "index_insts"; "indices_attached" ];
          res_owners = [ "core/" ];
        };
        {
          res_name = "striped SLB regions";
          res_write_idents =
            [
              ("Slb", "append");
              ("Region", "append");
              ("Slb", "stage_append");
              ("Region", "stage_append");
            ];
          res_fields = [];
          res_owners = [ "wal/"; "core/db_system.ml" ];
        };
        {
          (* Bypassing-the-clock page installs: the replication transport
             writing received durable artifacts.  Outside the devices
             themselves, only the standby's batch-install path may call
             them — a primary must never install_page its own media. *)
          res_name = "standby durable page images";
          res_write_idents =
            [
              ("Disk", "install_page");
              ("Duplex", "install_page");
              ("Log_disk", "install_page");
            ];
          res_fields = [];
          res_owners = [ "hw/"; "wal/log_disk.ml"; "replica/apply.ml" ];
        };
        {
          (* Command application: a logical record mutates data it does
             not carry, so WHERE commands may be applied is an integrity
             boundary.  Only the codec subsystem itself and the shared
             REDO kernel in the restorer may run the dispatch table (the
             standby audit reaches it through Restorer.apply_records). *)
          res_name = "replay dispatch table";
          res_write_idents = [ ("Replay", "apply_cmd"); ("Dispatch", "register") ];
          res_fields = [];
          res_owners = [ "logical/"; "recovery/restorer.ml" ];
        };
        {
          res_name = "lock-manager shards";
          res_write_idents =
            [
              ("Lock_mgr", "acquire");
              ("Lock_mgr", "release");
              ("Lock_mgr", "release_all");
            ];
          res_fields = [];
          res_owners = [ "txn/"; "core/" ];
        };
      ];
    (* R10: the sanctioned structured exceptions.  A [raise] under lib/
       must construct one of these (or re-raise); R11 checks each entry
       still names a declared exception. *)
    r10_exceptions =
      [
        { x_rel = "util/fatal.ml"; x_name = "Invariant" };
        { x_rel = "wal/slb.ml"; x_name = "Slb_full" };
        { x_rel = "wal/partition_bin.ml"; x_name = "Pool_exhausted" };
        { x_rel = "wal/slt.ml"; x_name = "Bin_table_full" };
        { x_rel = "wal/slt.ml"; x_name = "Record_too_large" };
        { x_rel = "storage/partition.ml"; x_name = "No_space" };
        { x_rel = "storage/relation.ml"; x_name = "Tuple_too_large" };
        { x_rel = "txn/undo_space.ml"; x_name = "Out_of_undo_space" };
        { x_rel = "hw/duplex.ml"; x_name = "Both_mirrors_failed" };
        { x_rel = "hw/volatile.ml"; x_name = "Lost" };
        { x_rel = "core/db_state.ml"; x_name = "Aborted" };
        { x_rel = "core/db_state.ml"; x_name = "Crashed" };
        { x_rel = "core/db_state.ml"; x_name = "Unknown_relation" };
        { x_rel = "core/db_state.ml"; x_name = "Unknown_index" };
      ];
    r10_stdlib_exceptions = [ "Not_found"; "Exit" ];
    (* fatal.ml is the one module allowed to raise outside the registry:
       it implements the escape hatch itself (Invalid_argument for
       misuse). *)
    r10_raise_ok = [ "util/fatal.ml" ];
    r10_wildcard_allow =
      [
        {
          a_rel = "core/sim_exec.ml";
          a_binding = "run";
          a_ident = "_";
          (* Best-effort abort while propagating a programming error: the
             original exception is re-raised on the next line, so nothing
             is swallowed. *)
          a_why = "best-effort abort during exception propagation; original re-raised";
        };
        {
          a_rel = "recovery/wellknown.ml";
          a_binding = "load";
          a_ident = "_";
          (* Decoding a possibly-rotted well-known copy: any decode
             failure means fall through to the redundant second copy —
             exactly the point of keeping two CRC'd copies. *)
          a_why = "rotted-copy decode failure falls to the redundant copy";
        };
      ];
  }

(* -- R7: SLB region ownership ------------------------------------------------ *)

(* Each striped SLB region belongs to one executor; every append must funnel
   through the per-executor redo sink in core/db_system.ml (which routes a
   transaction's records to its executor's region) or stay inside the WAL
   component that defines the regions.  Confined call sites keep the
   region-ownership invariant auditable: no other layer can interleave
   records into a region it does not own. *)
let slb_append_allowed rel =
  (String.length rel >= 4 && String.sub rel 0 4 = "wal/")
  || rel = "core/db_system.ml"
