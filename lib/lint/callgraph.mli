(** Phase 2 of the two-phase analyzer: the cross-module call graph.

    Nodes are top-level bindings identified by (file, dotted binding
    name).  Edges come from resolving each binding's reference list
    against the whole-program {!Index}: a [Mrdb_x] head names the
    library; bare module heads go through the file's [module S = ...]
    aliases, the library's sibling modules, then the file's [open]s; bare
    value names resolve to the file's own bindings, opened modules, or
    (last resort) the unique defining module in the index.  References
    the resolver cannot place (stdlib, locals) contribute no edge — the
    graph under-approximates calls into code it cannot see. *)

type node = { n_rel : string; n_binding : string }

val node : rel:string -> binding:string -> node

val node_label : node -> string
(** ["Db_system:user_sink"] — for diagnostics. *)

type t

val build : Index.t -> t

val mem : t -> node -> bool
(** The node names a real indexed binding. *)

val callees : t -> node -> node list
val callers : t -> node -> node list

val resolve_ref : t -> Index.modinfo -> string list -> node option
(** Resolve one flattened reference as seen from a module.  Exposed for
    the call-graph golden tests. *)

val resolve_exn : t -> Index.modinfo -> string list -> (string * string) option
(** Resolve an exception-constructor path to (declaring file, exception
    name), for R10. *)

val reachable : t -> roots:node list -> (node, node option) Hashtbl.t
(** Forward BFS.  The table maps every reachable node to its BFS parent
    ([None] for a root); membership is reachability. *)

val chain : (node, node option) Hashtbl.t -> node -> node list
(** The root -> ... -> node call chain recorded by {!reachable}. *)

val escape_chain : t -> owned:(string -> bool) -> node -> node list option
(** R9's reverse search: does any call chain invoke [node] without
    passing through a file satisfying [owned]?  Walks caller edges,
    never expanding owner-file callers; a reached non-owner function
    with no callers at all is an escape (an exported root the graph
    cannot vouch for).  Returns the escaping chain, outermost first. *)
