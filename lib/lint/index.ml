(* Phase 1 of the two-phase analyzer: one pass over a parsed structure
   distills everything the interprocedural rules need — per-binding
   reference lists (the raw material of the call graph), raise sites,
   record-field writes, wildcard exception handlers, plus per-module
   declarations (exceptions, mutable record fields, module aliases and
   opens).  Still purely syntactic: no typechecking, identifiers are
   resolved later (Callgraph) from the surface spelling alone. *)

let rec flatten_opt : Longident.t -> string list option = function
  | Lident s -> Some [ s ]
  | Ldot (p, s) -> (
      match flatten_opt p with Some xs -> Some (xs @ [ s ]) | None -> None)
  | Lapply _ -> None

type raise_arg =
  | Constructs of string list  (* [raise (Exn ...)] — flattened constructor *)
  | Reraise                    (* [raise e] — re-raise of a caught variable *)
  | Opaque                     (* [raise (f x)] — a computed exception *)

type raise_site = { r_arg : raise_arg; r_loc : Location.t }

type binding = {
  b_name : string;  (* "commit", or "Manager.commit" inside a submodule *)
  b_loc : Location.t;
  b_refs : (string list * Location.t) list;
  b_raises : raise_site list;
  b_setfields : (string list * Location.t) list;
  b_wildcards : Location.t list;
  b_sorts : bool;  (* body references List/Array sort — "call site sorts" *)
}

type modinfo = {
  m_rel : string;           (* path relative to the linted root *)
  m_lib : string option;    (* wrapped library, from the directory *)
  m_name : string;          (* "Catalog" for storage/catalog.ml *)
  m_aliases : (string * string list) list;  (* module S = Mrdb_hw.Stable_mem *)
  m_opens : string list list;
  m_bindings : binding list;
  m_exceptions : string list;
  m_exn_aliases : (string * string list) list;  (* exception E = Path.E *)
  m_mutable_fields : string list;
}

type t = modinfo list

let module_name_of_rel rel = String.capitalize_ascii
    (Filename.remove_extension (Filename.basename rel))

(* -- per-binding body collector -------------------------------------------- *)

type collector = {
  mutable c_refs : (string list * Location.t) list;
  mutable c_raises : raise_site list;
  mutable c_setfields : (string list * Location.t) list;
  mutable c_wildcards : Location.t list;
  mutable c_sorts : bool;
}

let is_sort_ref = function
  | [ ("List" | "ListLabels" | "Array" | "ArrayLabels");
      ("sort" | "sort_uniq" | "stable_sort" | "fast_sort") ]
  | [ "Stdlib";
      ("List" | "ListLabels" | "Array" | "ArrayLabels");
      ("sort" | "sort_uniq" | "stable_sort" | "fast_sort") ] ->
      true
  | _ -> false

let is_raise_ident = function
  | [ ("raise" | "raise_notrace") ]
  | [ "Stdlib"; ("raise" | "raise_notrace") ] ->
      true
  | _ -> false

(* A try-case that swallows every exception: [_], possibly aliased or in
   an or-pattern.  A [with e -> ...] variable catch-all is deliberately
   not flagged — the idiom re-raises and the re-raise is checked. *)
let rec catches_everything (p : Parsetree.pattern) =
  match p.ppat_desc with
  | Ppat_any -> true
  | Ppat_alias (q, _) -> catches_everything q
  | Ppat_or (a, b) -> catches_everything a || catches_everything b
  | _ -> false

let collect_body (c : collector) (e : Parsetree.expression) =
  let open Ast_iterator in
  let on_lid (lid : Longident.t Location.loc) =
    match flatten_opt lid.txt with
    | None -> ()
    | Some path ->
        if is_sort_ref path then c.c_sorts <- true;
        c.c_refs <- (path, lid.loc) :: c.c_refs
  in
  let expr sub (e : Parsetree.expression) =
    (match e.pexp_desc with
    | Pexp_ident lid | Pexp_construct (lid, _) | Pexp_field (_, lid)
    | Pexp_new lid ->
        on_lid lid
    | Pexp_setfield (_, lid, _) -> (
        on_lid lid;
        match flatten_opt lid.txt with
        | Some path -> c.c_setfields <- (path, lid.loc) :: c.c_setfields
        | None -> ())
    | Pexp_record (fields, _) -> List.iter (fun (lid, _) -> on_lid lid) fields
    | Pexp_apply ({ pexp_desc = Pexp_ident f; _ }, args) -> (
        match flatten_opt f.txt with
        | Some p when is_raise_ident p -> (
            match List.assoc_opt Asttypes.Nolabel args with
            | None -> ()
            | Some arg ->
                let r_arg =
                  match arg.Parsetree.pexp_desc with
                  | Pexp_construct (lid, _) -> (
                      match flatten_opt lid.txt with
                      | Some path -> Constructs path
                      | None -> Opaque)
                  | Pexp_ident _ -> Reraise
                  | _ -> Opaque
                in
                c.c_raises <- { r_arg; r_loc = e.pexp_loc } :: c.c_raises)
        | _ -> ())
    | Pexp_try (_, cases) ->
        List.iter
          (fun (case : Parsetree.case) ->
            if case.pc_guard = None && catches_everything case.pc_lhs then
              c.c_wildcards <- case.pc_lhs.ppat_loc :: c.c_wildcards)
          cases
    | _ -> ());
    default_iterator.expr sub e
  in
  let pat sub (p : Parsetree.pattern) =
    (match p.ppat_desc with
    | Ppat_construct (lid, _) | Ppat_type lid | Ppat_open (lid, _) -> on_lid lid
    | Ppat_record (fields, _) -> List.iter (fun (lid, _) -> on_lid lid) fields
    | _ -> ());
    default_iterator.pat sub p
  in
  let it = { default_iterator with expr; pat } in
  it.expr it e

(* -- structure walk --------------------------------------------------------- *)

let rec binding_name_of_pattern (p : Parsetree.pattern) =
  match p.ppat_desc with
  | Ppat_var v -> Some v.txt
  | Ppat_constraint (q, _) | Ppat_alias (q, _) -> binding_name_of_pattern q
  | Ppat_tuple ps -> List.find_map binding_name_of_pattern ps
  | _ -> None

let rec walk_items ~prefix acc_bindings acc_exns acc_exn_aliases acc_fields
    acc_aliases acc_opens (items : Parsetree.structure) =
  List.iter
    (fun (item : Parsetree.structure_item) ->
      match item.pstr_desc with
      | Pstr_value (_, vbs) ->
          List.iter
            (fun (vb : Parsetree.value_binding) ->
              let name =
                match binding_name_of_pattern vb.pvb_pat with
                | Some n -> n
                | None -> "_"
              in
              let c =
                { c_refs = []; c_raises = []; c_setfields = [];
                  c_wildcards = []; c_sorts = false }
              in
              collect_body c vb.pvb_expr;
              acc_bindings :=
                {
                  b_name = prefix ^ name;
                  b_loc = vb.pvb_pat.ppat_loc;
                  b_refs = List.rev c.c_refs;
                  b_raises = List.rev c.c_raises;
                  b_setfields = List.rev c.c_setfields;
                  b_wildcards = List.rev c.c_wildcards;
                  b_sorts = c.c_sorts;
                }
                :: !acc_bindings)
            vbs
      | Pstr_exception te -> (
          let name = prefix ^ te.ptyexn_constructor.pext_name.txt in
          match te.ptyexn_constructor.pext_kind with
          | Pext_rebind lid -> (
              (* [exception E = Path.E] re-exports, it does not declare:
                 resolution follows the alias to the original site. *)
              match flatten_opt lid.txt with
              | Some path -> acc_exn_aliases := (name, path) :: !acc_exn_aliases
              | None -> ())
          | Pext_decl _ -> acc_exns := name :: !acc_exns)
      | Pstr_type (_, decls) ->
          List.iter
            (fun (d : Parsetree.type_declaration) ->
              match d.ptype_kind with
              | Ptype_record labels ->
                  List.iter
                    (fun (l : Parsetree.label_declaration) ->
                      if l.pld_mutable = Asttypes.Mutable then
                        acc_fields := l.pld_name.txt :: !acc_fields)
                    labels
              | _ -> ())
            decls
      | Pstr_module mb -> (
          let name =
            match mb.pmb_name.txt with Some n -> n | None -> "_"
          in
          let rec strip (me : Parsetree.module_expr) =
            match me.pmod_desc with
            | Pmod_constraint (inner, _) -> strip inner
            | d -> d
          in
          match strip mb.pmb_expr with
          | Pmod_ident lid -> (
              match flatten_opt lid.txt with
              | Some path -> acc_aliases := (prefix ^ name, path) :: !acc_aliases
              | None -> ())
          | Pmod_structure sub ->
              walk_items ~prefix:(prefix ^ name ^ ".") acc_bindings acc_exns
                acc_exn_aliases acc_fields acc_aliases acc_opens sub
          | _ -> () (* functor bodies are out of scope, as for R1-R7 *))
      | Pstr_open od -> (
          match od.popen_expr.pmod_desc with
          | Pmod_ident lid -> (
              match flatten_opt lid.txt with
              | Some path -> acc_opens := path :: !acc_opens
              | None -> ())
          | _ -> ())
      | _ -> ())
    items

let of_structure ~rel ~lib (str : Parsetree.structure) =
  let bindings = ref [] and exns = ref [] and fields = ref [] in
  let exn_aliases = ref [] and aliases = ref [] and opens = ref [] in
  walk_items ~prefix:"" bindings exns exn_aliases fields aliases opens str;
  {
    m_rel = rel;
    m_lib = lib;
    m_name = module_name_of_rel rel;
    m_aliases = List.rev !aliases;
    m_opens = List.rev !opens;
    m_bindings = List.rev !bindings;
    m_exceptions = List.rev !exns;
    m_exn_aliases = List.rev !exn_aliases;
    m_mutable_fields = List.rev !fields;
  }

(* -- lookup helpers ---------------------------------------------------------- *)

let find_module t ~rel = List.find_opt (fun m -> m.m_rel = rel) t

let find_binding m name =
  List.find_opt (fun b -> b.b_name = name) m.m_bindings

let modules_named t name = List.filter (fun m -> m.m_name = name) t

let declares_exception m name = List.mem name m.m_exceptions
