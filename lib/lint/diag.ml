type rule = R1 | R2 | R3 | R4 | R5 | R6 | R7 | Parse_error

type t = { rule : rule; file : string; line : int; col : int; msg : string }

let rule_name = function
  | R1 -> "R1"
  | R2 -> "R2"
  | R3 -> "R3"
  | R4 -> "R4"
  | R5 -> "R5"
  | R6 -> "R6"
  | R7 -> "R7"
  | Parse_error -> "parse"

let rule_title = function
  | R1 -> "wild-write discipline"
  | R2 -> "layering"
  | R3 -> "partiality"
  | R4 -> "sealed interfaces"
  | R5 -> "fault-injection containment"
  | R6 -> "output discipline"
  | R7 -> "SLB region ownership"
  | Parse_error -> "unparseable source"

let paper_clause = function
  | R1 ->
      "paper 2.2: stable memory is \"protected from wild or malicious "
      ^ "stores\"; only the log components (mrdb_wal, recovery/wellknown.ml) "
      ^ "may write it raw"
  | R2 ->
      "paper 2.3: the recovery CPU is separable from the main CPU; module "
      ^ "references must follow the declared dependency order "
      ^ "(util -> hw/sim -> wal/storage/txn/index -> ckpt/archive -> "
      ^ "recovery -> core)"
  | R3 ->
      "recovery correctness: corruption-vs-bug must be structured and "
      ^ "greppable; use Mrdb_util.Fatal (or a structured exception), never "
      ^ "a bare partial function"
  | R4 -> "architecture: every module under lib/ ships a sealed .mli interface"
  | R5 ->
      "robustness: faults are simulated inputs, never production behavior; "
      ^ "only lib/fault (and tests) may arm fault hooks or inject "
      ^ "failures/corruption on the simulated devices"
  | R6 ->
      "observability: runtime output goes through Mrdb_obs.Export or "
      ^ "Mrdb_util.Texttab; no bare Printf.printf/print_string under lib/ "
      ^ "outside lib/obs and util/texttab.ml"
  | R7 ->
      "executor sharding: each striped SLB region is appended only by its "
      ^ "owning executor's logging path; all appends funnel through "
      ^ "core/db_system.ml (the per-executor redo sink) or stay inside "
      ^ "mrdb_wal"
  | Parse_error -> "mrdb_lint cannot check what it cannot parse"

let make ~rule ~file ~line ~col msg = { rule; file; line; col; msg }

let compare_diag a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c else String.compare (rule_name a.rule) (rule_name b.rule)

let pp ppf d =
  Format.fprintf ppf "%s:%d:%d: [%s %s] %s@,    (%s)" d.file d.line d.col
    (rule_name d.rule) (rule_title d.rule) d.msg (paper_clause d.rule)

let to_string d = Format.asprintf "@[<v>%a@]" pp d
