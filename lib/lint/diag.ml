type rule =
  | R1
  | R2
  | R3
  | R4
  | R5
  | R6
  | R7
  | R8
  | R9
  | R10
  | R11
  | Parse_error

type t = {
  rule : rule;
  file : string;
  line : int;
  col : int;
  msg : string;
  fp : string;
}

let rule_name = function
  | R1 -> "R1"
  | R2 -> "R2"
  | R3 -> "R3"
  | R4 -> "R4"
  | R5 -> "R5"
  | R6 -> "R6"
  | R7 -> "R7"
  | R8 -> "R8"
  | R9 -> "R9"
  | R10 -> "R10"
  | R11 -> "R11"
  | Parse_error -> "parse"

let all_rules = [ R1; R2; R3; R4; R5; R6; R7; R8; R9; R10; R11 ]

let rule_of_name s =
  List.find_opt (fun r -> rule_name r = s) all_rules

let rule_title = function
  | R1 -> "wild-write discipline"
  | R2 -> "layering"
  | R3 -> "partiality"
  | R4 -> "sealed interfaces"
  | R5 -> "fault-injection containment"
  | R6 -> "output discipline"
  | R7 -> "SLB region ownership"
  | R8 -> "determinism"
  | R9 -> "ownership"
  | R10 -> "structured raises"
  | R11 -> "allowlist hygiene"
  | Parse_error -> "unparseable source"

let paper_clause = function
  | R1 ->
      "paper 2.2: stable memory is \"protected from wild or malicious "
      ^ "stores\"; only the log components (mrdb_wal, recovery/wellknown.ml) "
      ^ "may write it raw"
  | R2 ->
      "paper 2.3: the recovery CPU is separable from the main CPU; module "
      ^ "references must follow the declared dependency order "
      ^ "(util -> hw/sim -> wal/storage/txn/index -> ckpt/archive -> "
      ^ "recovery -> core)"
  | R3 ->
      "recovery correctness: corruption-vs-bug must be structured and "
      ^ "greppable; use Mrdb_util.Fatal (or a structured exception), never "
      ^ "a bare partial function"
  | R4 -> "architecture: every module under lib/ ships a sealed .mli interface"
  | R5 ->
      "robustness: faults are simulated inputs, never production behavior; "
      ^ "only lib/fault (and tests) may arm fault hooks or inject "
      ^ "failures/corruption on the simulated devices"
  | R6 ->
      "observability: runtime output goes through Mrdb_obs.Export or "
      ^ "Mrdb_util.Texttab; no bare Printf.printf/print_string under lib/ "
      ^ "outside lib/obs and util/texttab.ml"
  | R7 ->
      "executor sharding: each striped SLB region is appended only by its "
      ^ "owning executor's logging path; all appends funnel through "
      ^ "core/db_system.ml (the per-executor redo sink) or stay inside "
      ^ "mrdb_wal"
  | R8 ->
      "paper 2.3/2.5: recovery replays the SLB->SLT commit order to "
      ^ "reconstruct the exact committed state, so no function reachable "
      ^ "from the commit, drain, or recovery entry points may draw hidden "
      ^ "nondeterminism (wall clock, Random, polymorphic Hashtbl.hash, or "
      ^ "unordered Hashtbl iteration that is neither sorted at the call "
      ^ "site nor allowlisted)"
  | R9 ->
      "single-owner log chains (Wu et al., parallel replay): every piece "
      ^ "of shared mutable state has exactly one owning module; a write "
      ^ "site outside the owner is legal only when every call chain to it "
      ^ "passes through the owner (checked on the cross-module call graph, "
      ^ "not per-file paths)"
  | R10 ->
      "recovery correctness: every raise under lib/ must construct a "
      ^ "declared structured exception (Fatal.Invariant, the capacity "
      ^ "exceptions) so corruption, misuse and capacity stay distinguishable "
      ^ "after a crash; 'try ... with _ ->' wildcards swallow that evidence"
  | R11 ->
      "analyzer hygiene: every allowlist/registry entry in Rules must "
      ^ "still match a real file, binding or identifier, so suppressions "
      ^ "cannot go stale silently and the baseline shrinks monotonically"
  | Parse_error -> "mrdb_lint cannot check what it cannot parse"

(* The fingerprint identifies a diagnostic across unrelated edits: it is
   keyed on the rule, the file, and a caller-supplied context key (the
   enclosing binding plus the offending identifier) rather than the line
   number, so a baseline entry survives code motion above the violation.
   When no key is supplied the line number is the best we have. *)
let make ~rule ~file ~line ~col ?key msg =
  let key = match key with Some k -> k | None -> Printf.sprintf "L%d" line in
  let fp = Printf.sprintf "%s:%s:%s" (rule_name rule) file key in
  { rule; file; line; col; msg; fp }

let compare_diag a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c else String.compare (rule_name a.rule) (rule_name b.rule)

(* The rule id sits in its own column right after the position, so CI can
   grep diagnostics by rule with a stable pattern: ': R8 \['. *)
let pp ppf d =
  Format.fprintf ppf "%s:%d:%d: %s [%s] %s@,    (%s)" d.file d.line d.col
    (rule_name d.rule) (rule_title d.rule) d.msg (paper_clause d.rule)

let to_string d = Format.asprintf "@[<v>%a@]" pp d
