(* Parse every .ml under a lib/ tree with compiler-libs and check the
   declared rule set (see Rules).  The engine is purely syntactic: it never
   typechecks, so it resolves only what the surface syntax shows — the head
   module of each [Longident] reference.  That is exactly enough for the
   architecture rules, because crossing a wrapped-library boundary always
   names the library ([Mrdb_wal.Slt.accept], [open Mrdb_storage]): there is
   no way to reach another library without the [Mrdb_*] head appearing. *)

(* -- longident traversal --------------------------------------------------- *)

(* [Longident.flatten] raises on functor application; this total version
   skips those paths (a functor application cannot smuggle a banned
   identifier or a raw stable-memory write — its pieces are still visited
   as module expressions). *)
let rec flatten_opt : Longident.t -> string list option = function
  | Lident s -> Some [ s ]
  | Ldot (p, s) -> (
      match flatten_opt p with Some xs -> Some (xs @ [ s ]) | None -> None)
  | Lapply _ -> None

(* Visit every [Longident] reference and every [assert false] in a
   structure.  The default iterator recurses everywhere; the overrides only
   peel the identifier off the nodes that carry one. *)
let iter_references ~on_lid ~on_assert_false (str : Parsetree.structure) =
  let open Ast_iterator in
  let expr sub (e : Parsetree.expression) =
    (match e.pexp_desc with
    | Pexp_ident lid
    | Pexp_construct (lid, _)
    | Pexp_field (_, lid)
    | Pexp_new lid ->
        on_lid lid
    | Pexp_setfield (_, lid, _) -> on_lid lid
    | Pexp_record (fields, _) -> List.iter (fun (lid, _) -> on_lid lid) fields
    | Pexp_assert { pexp_desc = Pexp_construct ({ txt = Lident "false"; _ }, None); _ }
      ->
        on_assert_false e.pexp_loc
    | _ -> ());
    default_iterator.expr sub e
  in
  let pat sub (p : Parsetree.pattern) =
    (match p.ppat_desc with
    | Ppat_construct (lid, _) | Ppat_type lid | Ppat_open (lid, _) -> on_lid lid
    | Ppat_record (fields, _) -> List.iter (fun (lid, _) -> on_lid lid) fields
    | _ -> ());
    default_iterator.pat sub p
  in
  let typ sub (t : Parsetree.core_type) =
    (match t.ptyp_desc with
    | Ptyp_constr (lid, _) | Ptyp_class (lid, _) -> on_lid lid
    | _ -> ());
    default_iterator.typ sub t
  in
  let module_expr sub (m : Parsetree.module_expr) =
    (match m.pmod_desc with Pmod_ident lid -> on_lid lid | _ -> ());
    default_iterator.module_expr sub m
  in
  let module_type sub (m : Parsetree.module_type) =
    (match m.pmty_desc with
    | Pmty_ident lid | Pmty_alias lid -> on_lid lid
    | _ -> ());
    default_iterator.module_type sub m
  in
  let it = { default_iterator with expr; pat; typ; module_expr; module_type } in
  it.structure it str

(* -- per-file checks -------------------------------------------------------- *)

let pos_of (loc : Location.t) =
  let p = loc.loc_start in
  (p.pos_lnum, p.pos_cnum - p.pos_bol)

(* R1: does the reference path contain a mutating [Stable_mem] access?
   Matches [Stable_mem.write] as well as [Mrdb_hw.Stable_mem.write] and the
   post-[open Mrdb_hw] spelling. *)
let rec stable_mem_mutation = function
  | "Stable_mem" :: m :: _ when List.mem m Rules.stable_mem_mutators -> Some m
  | _ :: rest -> stable_mem_mutation rest
  | [] -> None

(* R5: does the reference path contain an injection call ([Disk.fail],
   [Mrdb_hw.Duplex.fail_primary], ...)?  Same head-module matching as R1. *)
let rec fault_injection_call = function
  | m :: f :: _
    when (match List.assoc_opt m Rules.fault_injection_idents with
         | Some fns -> List.mem f fns
         | None -> false) ->
      Some (m ^ "." ^ f)
  | _ :: rest -> fault_injection_call rest
  | [] -> None

(* R7: does the reference path name an SLB append?  Matches [Slb.append],
   [Slb.Region.append], and their [Mrdb_wal]-qualified spellings — "Slb"
   anywhere in the path with "append" after it. *)
let rec slb_append_call = function
  | "Slb" :: rest ->
      if List.mem "append" rest then Some ("Slb." ^ String.concat "." rest)
      else slb_append_call rest
  | _ :: rest -> slb_append_call rest
  | [] -> None

let check_structure ~file ~rel str =
  let dir = match String.index_opt rel '/' with
    | Some i -> String.sub rel 0 i
    | None -> ""
  in
  let own_lib = Rules.library_of_dir dir in
  let diags = ref [] in
  let add rule loc msg =
    let line, col = pos_of loc in
    diags := Diag.make ~rule ~file ~line ~col msg :: !diags
  in
  let check_r1 loc path =
    if not (Rules.wild_write_allowed rel) then
      match stable_mem_mutation path with
      | Some m ->
          add Diag.R1 loc
            (Printf.sprintf
               "raw stable-memory write Stable_mem.%s outside the log \
                components; go through the SLB/SLT/partition-bin interfaces"
               m)
      | None -> ()
  in
  let check_r2 loc path =
    match (own_lib, path) with
    | Some own, head :: _
      when String.length head > 5
           && String.sub head 0 5 = "Mrdb_"
           && String.lowercase_ascii head <> own -> (
        let target = String.lowercase_ascii head in
        match Rules.is_known_library target with
        | false ->
            add Diag.R2 loc
              (Printf.sprintf
                 "reference to %s, which is not in the declared library \
                  order; add it to Rules.allowed_deps deliberately" head)
        | true ->
            if not (Rules.may_depend ~from:own ~target) then
              add Diag.R2 loc
                (Printf.sprintf
                   "%s must not reference %s (violates the declared \
                    dependency order)" own target))
    | _ -> ()
  in
  let check_r3 loc path =
    if not (Rules.partiality_allowed rel) then
      match Rules.banned_ident path with
      | Some name ->
          add Diag.R3 loc
            (Printf.sprintf
               "bare %s; use Mrdb_util.Fatal.invariant/misuse or a \
                structured exception" name)
      | None -> ()
  in
  let check_r6 loc path =
    if not (Rules.print_allowed rel) then
      match Rules.print_ident path with
      | Some name ->
          add Diag.R6 loc
            (Printf.sprintf
               "bare %s; render through Mrdb_obs.Export or \
                Mrdb_util.Texttab instead of printing from library code" name)
      | None -> ()
  in
  let check_r5 loc path =
    if not (Rules.fault_injection_allowed rel) then
      match fault_injection_call path with
      | Some name ->
          add Diag.R5 loc
            (Printf.sprintf
               "fault-injection call %s outside lib/fault; production code \
                must not fabricate device faults" name)
      | None -> ()
  in
  let check_r7 loc path =
    if not (Rules.slb_append_allowed rel) then
      match slb_append_call path with
      | Some name ->
          add Diag.R7 loc
            (Printf.sprintf
               "SLB append %s outside the executor-owned logging path; \
                only core/db_system.ml and the WAL component may append \
                to an SLB region" name)
      | None -> ()
  in
  let on_lid (lid : Longident.t Location.loc) =
    match flatten_opt lid.txt with
    | None -> ()
    | Some path ->
        check_r1 lid.loc path;
        check_r2 lid.loc path;
        check_r3 lid.loc path;
        check_r5 lid.loc path;
        check_r6 lid.loc path;
        check_r7 lid.loc path
  in
  let on_assert_false loc =
    if not (Rules.partiality_allowed rel) then
      add Diag.R3 loc
        "bare assert false; use Mrdb_util.Fatal.invariant so the broken \
         invariant is tagged and greppable"
  in
  iter_references ~on_lid ~on_assert_false str;
  List.rev !diags

let parse_impl path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let lexbuf = Lexing.from_channel ic in
      Lexing.set_filename lexbuf path;
      Parse.implementation lexbuf)

let lint_ml ~lib_dir ~rel =
  let file = Filename.concat lib_dir rel in
  match parse_impl file with
  | exception exn ->
      let line, col, detail =
        match exn with
        | Syntaxerr.Error e ->
            let loc = Syntaxerr.location_of_error e in
            let line, col = pos_of loc in
            (line, col, "syntax error")
        | Lexer.Error (_, loc) ->
            let line, col = pos_of loc in
            (line, col, "lexer error")
        | _ -> (1, 0, Printexc.to_string exn)
      in
      [ Diag.make ~rule:Diag.Parse_error ~file ~line ~col detail ]
  | str -> check_structure ~file ~rel str

(* -- tree walk -------------------------------------------------------------- *)

let list_dir path = List.sort String.compare (Array.to_list (Sys.readdir path))

let rec collect ~lib_dir rel acc =
  let abs = if rel = "" then lib_dir else Filename.concat lib_dir rel in
  if Sys.is_directory abs then
    List.fold_left
      (fun acc name ->
        collect ~lib_dir (if rel = "" then name else rel ^ "/" ^ name) acc)
      acc (list_dir abs)
  else rel :: acc

let lint ~lib_dir =
  let files = collect ~lib_dir "" [] in
  let has rel = List.mem rel files in
  let diags =
    List.concat_map
      (fun rel ->
        if Filename.check_suffix rel ".ml" then begin
          let sealed =
            if has (Filename.remove_extension rel ^ ".mli") then []
            else
              [
                Diag.make ~rule:Diag.R4
                  ~file:(Filename.concat lib_dir rel)
                  ~line:1 ~col:0
                  (Printf.sprintf "%s has no matching .mli; seal the interface"
                     (Filename.basename rel));
              ]
          in
          sealed @ lint_ml ~lib_dir ~rel
        end
        else [])
      files
  in
  List.sort Diag.compare_diag diags
