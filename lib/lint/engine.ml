(* Parse every .ml under a lib/ tree with compiler-libs and check the
   declared rule set (see Rules).  The engine is purely syntactic: it never
   typechecks, so it resolves only what the surface syntax shows — the head
   module of each [Longident] reference.  That is exactly enough for the
   architecture rules, because crossing a wrapped-library boundary always
   names the library ([Mrdb_wal.Slt.accept], [open Mrdb_storage]): there is
   no way to reach another library without the [Mrdb_*] head appearing. *)

(* -- longident traversal --------------------------------------------------- *)

(* [Longident.flatten] raises on functor application; this total version
   skips those paths (a functor application cannot smuggle a banned
   identifier or a raw stable-memory write — its pieces are still visited
   as module expressions). *)
let rec flatten_opt : Longident.t -> string list option = function
  | Lident s -> Some [ s ]
  | Ldot (p, s) -> (
      match flatten_opt p with Some xs -> Some (xs @ [ s ]) | None -> None)
  | Lapply _ -> None

(* Visit every [Longident] reference and every [assert false] in a
   structure.  The default iterator recurses everywhere; the overrides only
   peel the identifier off the nodes that carry one. *)
let iter_references ~on_lid ~on_assert_false (str : Parsetree.structure) =
  let open Ast_iterator in
  let expr sub (e : Parsetree.expression) =
    (match e.pexp_desc with
    | Pexp_ident lid
    | Pexp_construct (lid, _)
    | Pexp_field (_, lid)
    | Pexp_new lid ->
        on_lid lid
    | Pexp_setfield (_, lid, _) -> on_lid lid
    | Pexp_record (fields, _) -> List.iter (fun (lid, _) -> on_lid lid) fields
    | Pexp_assert { pexp_desc = Pexp_construct ({ txt = Lident "false"; _ }, None); _ }
      ->
        on_assert_false e.pexp_loc
    | _ -> ());
    default_iterator.expr sub e
  in
  let pat sub (p : Parsetree.pattern) =
    (match p.ppat_desc with
    | Ppat_construct (lid, _) | Ppat_type lid | Ppat_open (lid, _) -> on_lid lid
    | Ppat_record (fields, _) -> List.iter (fun (lid, _) -> on_lid lid) fields
    | _ -> ());
    default_iterator.pat sub p
  in
  let typ sub (t : Parsetree.core_type) =
    (match t.ptyp_desc with
    | Ptyp_constr (lid, _) | Ptyp_class (lid, _) -> on_lid lid
    | _ -> ());
    default_iterator.typ sub t
  in
  let module_expr sub (m : Parsetree.module_expr) =
    (match m.pmod_desc with Pmod_ident lid -> on_lid lid | _ -> ());
    default_iterator.module_expr sub m
  in
  let module_type sub (m : Parsetree.module_type) =
    (match m.pmty_desc with
    | Pmty_ident lid | Pmty_alias lid -> on_lid lid
    | _ -> ());
    default_iterator.module_type sub m
  in
  let it = { default_iterator with expr; pat; typ; module_expr; module_type } in
  it.structure it str

(* -- per-file checks -------------------------------------------------------- *)

let pos_of (loc : Location.t) =
  let p = loc.loc_start in
  (p.pos_lnum, p.pos_cnum - p.pos_bol)

(* R1: does the reference path contain a mutating [Stable_mem] access?
   Matches [Stable_mem.write] as well as [Mrdb_hw.Stable_mem.write] and the
   post-[open Mrdb_hw] spelling. *)
let rec stable_mem_mutation = function
  | "Stable_mem" :: m :: _ when List.mem m Rules.stable_mem_mutators -> Some m
  | _ :: rest -> stable_mem_mutation rest
  | [] -> None

(* R5: does the reference path contain an injection call ([Disk.fail],
   [Mrdb_hw.Duplex.fail_primary], ...)?  Same head-module matching as R1. *)
let rec fault_injection_call = function
  | m :: f :: _
    when (match List.assoc_opt m Rules.fault_injection_idents with
         | Some fns -> List.mem f fns
         | None -> false) ->
      Some (m ^ "." ^ f)
  | _ :: rest -> fault_injection_call rest
  | [] -> None

(* R7: does the reference path name an SLB append?  Matches [Slb.append],
   [Slb.Region.append], the group-commit staging spelling
   [Slb.Region.stage_append], and their [Mrdb_wal]-qualified variants —
   "Slb" anywhere in the path with "append"/"stage_append" after it. *)
let rec slb_append_call = function
  | "Slb" :: rest ->
      if List.mem "append" rest || List.mem "stage_append" rest then
        Some ("Slb." ^ String.concat "." rest)
      else slb_append_call rest
  | _ :: rest -> slb_append_call rest
  | [] -> None

let check_structure ~file ~rel str =
  let dir = match String.index_opt rel '/' with
    | Some i -> String.sub rel 0 i
    | None -> ""
  in
  let own_lib = Rules.library_of_dir dir in
  let diags = ref [] in
  let add rule loc msg =
    let line, col = pos_of loc in
    diags := Diag.make ~rule ~file ~line ~col msg :: !diags
  in
  let check_r1 loc path =
    if not (Rules.wild_write_allowed rel) then
      match stable_mem_mutation path with
      | Some m ->
          add Diag.R1 loc
            (Printf.sprintf
               "raw stable-memory write Stable_mem.%s outside the log \
                components; go through the SLB/SLT/partition-bin interfaces"
               m)
      | None -> ()
  in
  let check_r2 loc path =
    match (own_lib, path) with
    | Some own, head :: _
      when String.length head > 5
           && String.sub head 0 5 = "Mrdb_"
           && String.lowercase_ascii head <> own -> (
        let target = String.lowercase_ascii head in
        match Rules.is_known_library target with
        | false ->
            add Diag.R2 loc
              (Printf.sprintf
                 "reference to %s, which is not in the declared library \
                  order; add it to Rules.allowed_deps deliberately" head)
        | true ->
            if not (Rules.may_depend ~from:own ~target) then
              add Diag.R2 loc
                (Printf.sprintf
                   "%s must not reference %s (violates the declared \
                    dependency order)" own target))
    | _ -> ()
  in
  let check_r3 loc path =
    if not (Rules.partiality_allowed rel) then
      match Rules.banned_ident path with
      | Some name ->
          add Diag.R3 loc
            (Printf.sprintf
               "bare %s; use Mrdb_util.Fatal.invariant/misuse or a \
                structured exception" name)
      | None -> ()
  in
  let check_r6 loc path =
    if not (Rules.print_allowed rel) then
      match Rules.print_ident path with
      | Some name ->
          add Diag.R6 loc
            (Printf.sprintf
               "bare %s; render through Mrdb_obs.Export or \
                Mrdb_util.Texttab instead of printing from library code" name)
      | None -> ()
  in
  let check_r5 loc path =
    if not (Rules.fault_injection_allowed rel) then
      match fault_injection_call path with
      | Some name ->
          add Diag.R5 loc
            (Printf.sprintf
               "fault-injection call %s outside lib/fault; production code \
                must not fabricate device faults" name)
      | None -> ()
  in
  let check_r7 loc path =
    if not (Rules.slb_append_allowed rel) then
      match slb_append_call path with
      | Some name ->
          add Diag.R7 loc
            (Printf.sprintf
               "SLB append %s outside the executor-owned logging path; \
                only core/db_system.ml and the WAL component may append \
                to an SLB region" name)
      | None -> ()
  in
  let on_lid (lid : Longident.t Location.loc) =
    match flatten_opt lid.txt with
    | None -> ()
    | Some path ->
        check_r1 lid.loc path;
        check_r2 lid.loc path;
        check_r3 lid.loc path;
        check_r5 lid.loc path;
        check_r6 lid.loc path;
        check_r7 lid.loc path
  in
  let on_assert_false loc =
    if not (Rules.partiality_allowed rel) then
      add Diag.R3 loc
        "bare assert false; use Mrdb_util.Fatal.invariant so the broken \
         invariant is tagged and greppable"
  in
  iter_references ~on_lid ~on_assert_false str;
  List.rev !diags

let parse_impl path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let lexbuf = Lexing.from_channel ic in
      Lexing.set_filename lexbuf path;
      Parse.implementation lexbuf)

(* One parse per file: the per-file rules (phase 1 checks) and the
   whole-program index entry both come from the same tree. *)
let analyze_ml ~lib_dir ~rel =
  let file = Filename.concat lib_dir rel in
  match parse_impl file with
  | exception exn ->
      let line, col, detail =
        match exn with
        | Syntaxerr.Error e ->
            let loc = Syntaxerr.location_of_error e in
            let line, col = pos_of loc in
            (line, col, "syntax error")
        | Lexer.Error (_, loc) ->
            let line, col = pos_of loc in
            (line, col, "lexer error")
        | _ -> (1, 0, Printexc.to_string exn)
      in
      ([ Diag.make ~rule:Diag.Parse_error ~file ~line ~col detail ], None)
  | str ->
      let dir =
        match String.index_opt rel '/' with
        | Some i -> String.sub rel 0 i
        | None -> ""
      in
      let lib = Rules.library_of_dir dir in
      (check_structure ~file ~rel str, Some (Index.of_structure ~rel ~lib str))

let lint_ml ~lib_dir ~rel = fst (analyze_ml ~lib_dir ~rel)

(* -- tree walk -------------------------------------------------------------- *)

let list_dir path = List.sort String.compare (Array.to_list (Sys.readdir path))

let rec collect ~lib_dir rel acc =
  let abs = if rel = "" then lib_dir else Filename.concat lib_dir rel in
  if Sys.is_directory abs then
    List.fold_left
      (fun acc name ->
        collect ~lib_dir (if rel = "" then name else rel ^ "/" ^ name) acc)
      acc (list_dir abs)
  else rel :: acc

(* -- phase 2: interprocedural rules (R8-R11) -------------------------------- *)

let index_tree ~lib_dir =
  collect ~lib_dir "" []
  |> List.sort String.compare
  |> List.filter_map (fun rel ->
         if Filename.check_suffix rel ".ml" then
           snd (analyze_ml ~lib_dir ~rel)
         else None)

let file_of ~lib_dir rel = Filename.concat lib_dir rel

let render_chain nodes =
  nodes |> List.map Callgraph.node_label |> String.concat " -> "

(* R8: nothing reachable from a deterministic entry point may consult a
   nondeterminism source.  The reachable set comes from a forward BFS over
   the call graph; the BFS parent map renders the offending call chain so
   the diagnostic explains *why* the function is on the commit path. *)
let check_r8 ~lib_dir (config : Rules.config) index graph =
  let roots =
    List.map
      (fun (e : Rules.entry_point) ->
        Callgraph.node ~rel:e.Rules.e_rel ~binding:e.Rules.e_binding)
      config.Rules.r8_entry_points
  in
  let parents = Callgraph.reachable graph ~roots in
  (* Iterate the reachable set in a sorted order so diagnostics are stable
     regardless of hash-table layout. *)
  let nodes =
    Hashtbl.fold (fun n _ acc -> n :: acc) parents []
    |> List.sort (fun (a : Callgraph.node) b ->
           compare
             (a.Callgraph.n_rel, a.Callgraph.n_binding)
             (b.Callgraph.n_rel, b.Callgraph.n_binding))
  in
  let diags = ref [] in
  List.iter
    (fun (n : Callgraph.node) ->
      match Index.find_module index ~rel:n.Callgraph.n_rel with
      | None -> ()
      | Some m -> (
          match Index.find_binding m n.Callgraph.n_binding with
          | None -> ()
          | Some b ->
              List.iter
                (fun (path, loc) ->
                  match Rules.nondet_ident path with
                  | None -> ()
                  | Some (kind, display) ->
                      let exempt =
                        (match kind with
                        | Rules.Random_src ->
                            List.mem n.Callgraph.n_rel config.Rules.r8_random_ok
                        | Rules.Unordered_iter -> b.Index.b_sorts
                        | Rules.Clock | Rules.Poly_hash -> false)
                        || List.exists
                             (fun (a : Rules.allow) ->
                               a.Rules.a_rel = n.Callgraph.n_rel
                               && a.Rules.a_binding = n.Callgraph.n_binding
                               && a.Rules.a_ident = display)
                             config.Rules.r8_allow
                      in
                      if not exempt then begin
                        let line, col = pos_of loc in
                        diags :=
                          Diag.make ~rule:Diag.R8
                            ~file:(file_of ~lib_dir n.Callgraph.n_rel)
                            ~line ~col
                            ~key:(n.Callgraph.n_binding ^ ":" ^ display)
                            (Printf.sprintf
                               "%s on the deterministic path %s; sort the \
                                iteration, derive from the simulated clock, \
                                or add a justified Rules allowlist entry"
                               display
                               (render_chain (Callgraph.chain parents n)))
                          :: !diags
                      end)
                b.Index.b_refs))
    nodes;
  !diags

(* R9: writes to registered shared state must resolve to the owning
   module via the call graph.  A write site inside an owner file is the
   sink API itself; a write site elsewhere is legal only when every call
   chain reaching it passes through the owner. *)
let check_r9 ~lib_dir (config : Rules.config) index graph =
  let diags = ref [] in
  List.iter
    (fun (m : Index.modinfo) ->
      List.iter
        (fun (b : Index.binding) ->
          let node =
            Callgraph.node ~rel:m.Index.m_rel ~binding:b.Index.b_name
          in
          let check (res : Rules.resource) loc what =
            if not (Rules.owner_matches res.Rules.res_owners m.Index.m_rel)
            then
              match
                Callgraph.escape_chain graph
                  ~owned:(Rules.owner_matches res.Rules.res_owners)
                  node
              with
              | None -> ()
              | Some chain ->
                  let line, col = pos_of loc in
                  diags :=
                    Diag.make ~rule:Diag.R9
                      ~file:(file_of ~lib_dir m.Index.m_rel)
                      ~line ~col
                      ~key:(b.Index.b_name ^ ":" ^ what)
                      (Printf.sprintf
                         "write to %s (%s) outside owner [%s], reachable \
                          without passing through it (%s); route the write \
                          through the owning module"
                         res.Rules.res_name what
                         (String.concat " " res.Rules.res_owners)
                         (render_chain chain))
                    :: !diags
          in
          List.iter
            (fun (path, loc) ->
              match List.rev path with
              | field :: _ ->
                  List.iter
                    (fun (res : Rules.resource) ->
                      if List.mem field res.Rules.res_fields then
                        check res loc (field ^ " <-"))
                    config.Rules.r9_resources
              | [] -> ())
            b.Index.b_setfields;
          List.iter
            (fun (path, loc) ->
              List.iter
                (fun (res : Rules.resource) ->
                  match Rules.write_ident_call res path with
                  | Some name -> check res loc name
                  | None -> ())
                config.Rules.r9_resources)
            b.Index.b_refs)
        m.Index.m_bindings)
    index;
  !diags

(* R10: every [raise] constructs a sanctioned structured exception (or
   re-raises); wildcard handlers need a justified allowlist entry. *)
let check_r10 ~lib_dir (config : Rules.config) index graph =
  let diags = ref [] in
  let add (m : Index.modinfo) ~key loc msg =
    let line, col = pos_of loc in
    diags :=
      Diag.make ~rule:Diag.R10
        ~file:(file_of ~lib_dir m.Index.m_rel)
        ~line ~col ~key msg
      :: !diags
  in
  let registered decl_rel name =
    List.exists
      (fun (x : Rules.exn_decl) ->
        x.Rules.x_rel = decl_rel && x.Rules.x_name = name)
      config.Rules.r10_exceptions
  in
  List.iter
    (fun (m : Index.modinfo) ->
      let raise_exempt = List.mem m.Index.m_rel config.Rules.r10_raise_ok in
      List.iter
        (fun (b : Index.binding) ->
          if not raise_exempt then
            List.iter
              (fun (r : Index.raise_site) ->
                match r.Index.r_arg with
                | Index.Reraise -> ()
                | Index.Opaque ->
                    add m ~key:(b.Index.b_name ^ ":opaque") r.Index.r_loc
                      "raise of a computed exception; construct a declared \
                       structured exception so recovery can classify the \
                       failure"
                | Index.Constructs path -> (
                    let last = List.nth path (List.length path - 1) in
                    match Callgraph.resolve_exn graph m path with
                    | Some (decl_rel, name) ->
                        if not (registered decl_rel name) then
                          add m ~key:(b.Index.b_name ^ ":" ^ last) r.Index.r_loc
                            (Printf.sprintf
                               "raise of %s (declared in %s) which is not in \
                                the sanctioned exception registry; register \
                                it in Rules with its recovery semantics"
                               name decl_rel)
                    | None ->
                        if
                          not (List.mem last config.Rules.r10_stdlib_exceptions)
                        then
                          add m ~key:(b.Index.b_name ^ ":" ^ last) r.Index.r_loc
                            (Printf.sprintf
                               "raise of unregistered exception %s; declare \
                                a structured exception and register it in \
                                Rules" last)))
              b.Index.b_raises;
          List.iter
            (fun loc ->
              let allowed =
                List.exists
                  (fun (a : Rules.allow) ->
                    a.Rules.a_rel = m.Index.m_rel
                    && a.Rules.a_binding = b.Index.b_name)
                  config.Rules.r10_wildcard_allow
              in
              if not allowed then
                add m ~key:(b.Index.b_name ^ ":wildcard") loc
                  "try ... with _ -> swallows every exception (including \
                   Crashed and Aborted); match the specific exceptions or \
                   add a justified Rules allowlist entry")
            b.Index.b_wildcards)
        m.Index.m_bindings)
    index;
  !diags

(* R11: the configuration itself must stay live — every entry point,
   allowlist entry, owner, and registered exception must still name a real
   file/binding/identifier.  Stale suppressions are bugs. *)
let check_r11 ~lib_dir (config : Rules.config) index =
  let diags = ref [] in
  let stale rel key msg =
    diags :=
      Diag.make ~rule:Diag.R11 ~file:(file_of ~lib_dir rel) ~line:1 ~col:0 ~key
        msg
      :: !diags
  in
  let module_of rel = Index.find_module index ~rel in
  List.iter
    (fun (e : Rules.entry_point) ->
      let live =
        match module_of e.Rules.e_rel with
        | Some m -> Index.find_binding m e.Rules.e_binding <> None
        | None -> false
      in
      if not live then
        stale e.Rules.e_rel ("entry:" ^ e.Rules.e_binding)
          (Printf.sprintf
             "stale R8 entry point %s:%s — no such binding; update the Rules \
              configuration" e.Rules.e_rel e.Rules.e_binding))
    config.Rules.r8_entry_points;
  List.iter
    (fun (a : Rules.allow) ->
      match module_of a.Rules.a_rel with
      | None ->
          stale a.Rules.a_rel ("allow:" ^ a.Rules.a_binding)
            (Printf.sprintf "stale R8 allowlist entry: no file %s"
               a.Rules.a_rel)
      | Some m -> (
          match Index.find_binding m a.Rules.a_binding with
          | None ->
              stale a.Rules.a_rel ("allow:" ^ a.Rules.a_binding)
                (Printf.sprintf "stale R8 allowlist entry: no binding %s in %s"
                   a.Rules.a_binding a.Rules.a_rel)
          | Some b ->
              let refs_ident =
                List.exists
                  (fun (path, _) ->
                    match Rules.nondet_ident path with
                    | Some (_, d) -> d = a.Rules.a_ident
                    | None -> false)
                  b.Index.b_refs
              in
              if not refs_ident then
                stale a.Rules.a_rel ("allow:" ^ a.Rules.a_binding)
                  (Printf.sprintf
                     "stale R8 allowlist entry: %s:%s no longer references %s"
                     a.Rules.a_rel a.Rules.a_binding a.Rules.a_ident)))
    config.Rules.r8_allow;
  List.iter
    (fun rel ->
      if module_of rel = None then
        stale rel "random-ok"
          (Printf.sprintf "stale R8 Random allowance: no file %s" rel))
    config.Rules.r8_random_ok;
  List.iter
    (fun (res : Rules.resource) ->
      List.iter
        (fun owner ->
          let matched =
            List.exists
              (fun (m : Index.modinfo) ->
                Rules.owner_matches [ owner ] m.Index.m_rel)
              index
          in
          if not matched then
            stale owner ("owner:" ^ res.Rules.res_name)
              (Printf.sprintf
                 "stale R9 owner %s for resource %S: no indexed file matches"
                 owner res.Rules.res_name))
        res.Rules.res_owners;
      List.iter
        (fun field ->
          let declared =
            List.exists
              (fun (m : Index.modinfo) ->
                List.mem field m.Index.m_mutable_fields)
              index
          in
          if not declared then
            let anchor =
              match res.Rules.res_owners with o :: _ -> o | [] -> "."
            in
            stale anchor ("field:" ^ field)
              (Printf.sprintf
                 "stale R9 field %s for resource %S: no module declares a \
                  mutable field of that name" field res.Rules.res_name))
        res.Rules.res_fields)
    config.Rules.r9_resources;
  List.iter
    (fun (x : Rules.exn_decl) ->
      let live =
        match module_of x.Rules.x_rel with
        | Some m -> Index.declares_exception m x.Rules.x_name
        | None -> false
      in
      if not live then
        stale x.Rules.x_rel ("exn:" ^ x.Rules.x_name)
          (Printf.sprintf
             "stale R10 registry entry: %s does not declare exception %s"
             x.Rules.x_rel x.Rules.x_name))
    config.Rules.r10_exceptions;
  List.iter
    (fun rel ->
      if module_of rel = None then
        stale rel "raise-ok"
          (Printf.sprintf "stale R10 raise allowance: no file %s" rel))
    config.Rules.r10_raise_ok;
  List.iter
    (fun (a : Rules.allow) ->
      match module_of a.Rules.a_rel with
      | None ->
          stale a.Rules.a_rel ("wildcard:" ^ a.Rules.a_binding)
            (Printf.sprintf "stale R10 wildcard allowance: no file %s"
               a.Rules.a_rel)
      | Some m -> (
          match Index.find_binding m a.Rules.a_binding with
          | None ->
              stale a.Rules.a_rel ("wildcard:" ^ a.Rules.a_binding)
                (Printf.sprintf
                   "stale R10 wildcard allowance: no binding %s in %s"
                   a.Rules.a_binding a.Rules.a_rel)
          | Some b ->
              if b.Index.b_wildcards = [] then
                stale a.Rules.a_rel ("wildcard:" ^ a.Rules.a_binding)
                  (Printf.sprintf
                     "stale R10 wildcard allowance: %s:%s no longer contains \
                      a wildcard handler" a.Rules.a_rel a.Rules.a_binding)))
    config.Rules.r10_wildcard_allow;
  !diags

let lint ?(config = Rules.default_config) ~lib_dir () =
  let files = collect ~lib_dir "" [] in
  let has rel = List.mem rel files in
  let index = ref [] in
  let diags =
    List.concat_map
      (fun rel ->
        if Filename.check_suffix rel ".ml" then begin
          let sealed =
            if has (Filename.remove_extension rel ^ ".mli") then []
            else
              [
                Diag.make ~rule:Diag.R4
                  ~file:(Filename.concat lib_dir rel)
                  ~line:1 ~col:0
                  (Printf.sprintf "%s has no matching .mli; seal the interface"
                     (Filename.basename rel));
              ]
          in
          let file_diags, info = analyze_ml ~lib_dir ~rel in
          (match info with Some m -> index := m :: !index | None -> ());
          sealed @ file_diags
        end
        else [])
      files
  in
  let index = List.rev !index in
  let graph = Callgraph.build index in
  let inter =
    check_r8 ~lib_dir config index graph
    @ check_r9 ~lib_dir config index graph
    @ check_r10 ~lib_dir config index graph
    @ check_r11 ~lib_dir config index
  in
  List.sort Diag.compare_diag (diags @ inter)
