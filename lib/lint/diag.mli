(** Lint diagnostics: a violated rule anchored at [file:line:col]. *)

type rule =
  | R1
  | R2
  | R3
  | R4
  | R5
  | R6
  | R7
  | R8
  | R9
  | R10
  | R11
  | Parse_error

type t = {
  rule : rule;
  file : string;
  line : int;
  col : int;
  msg : string;
  fp : string;  (** stable fingerprint, used by the baseline file *)
}

val rule_name : rule -> string
val rule_title : rule -> string

val all_rules : rule list
(** Every enforced rule, in order (excludes [Parse_error]). *)

val rule_of_name : string -> rule option
(** ["R8"] -> [Some R8]; drives [mrdb_lint --explain]. *)

val paper_clause : rule -> string
(** The paper clause (or architectural principle) the rule enforces,
    printed with every diagnostic. *)

val make :
  rule:rule -> file:string -> line:int -> col:int -> ?key:string -> string -> t
(** [key] is the stable fingerprint context (enclosing binding +
    offending identifier); when omitted the line number is used, which
    makes the fingerprint sensitive to code motion. *)

val compare_diag : t -> t -> int

val pp : Format.formatter -> t -> unit
(** Renders [file:line:col: R<n> [title] msg (clause)] — the rule id in a
    stable column of its own, so CI can grep by [': R8 \['] robustly. *)

val to_string : t -> string
