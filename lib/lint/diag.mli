(** Lint diagnostics: a violated rule anchored at [file:line:col]. *)

type rule = R1 | R2 | R3 | R4 | R5 | R6 | R7 | Parse_error

type t = { rule : rule; file : string; line : int; col : int; msg : string }

val rule_name : rule -> string
val rule_title : rule -> string

val paper_clause : rule -> string
(** The paper clause (or architectural principle) the rule enforces,
    printed with every diagnostic. *)

val make : rule:rule -> file:string -> line:int -> col:int -> string -> t
val compare_diag : t -> t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string
