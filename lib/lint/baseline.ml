(* The committed violation baseline: one fingerprint per line, [#]
   comments and blank lines ignored.  A diagnostic whose fingerprint is
   in the baseline is suppressed (it predates the rule and is tracked for
   burn-down); anything else is new and fails the build.  Baseline
   entries that no longer match any diagnostic are *stale* — they must be
   deleted, and [--check-baseline] turns them into failures so the file
   can only shrink. *)

type t = { entries : string list }

let strip_comment line =
  match String.index_opt line '#' with
  | Some i -> String.sub line 0 i
  | None -> line

let parse_lines lines =
  let entries =
    List.filter_map
      (fun line ->
        let line = String.trim (strip_comment line) in
        if line = "" then None else Some line)
      lines
  in
  { entries }

let load path =
  if not (Sys.file_exists path) then { entries = [] }
  else begin
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let lines = ref [] in
        (try
           while true do
             lines := input_line ic :: !lines
           done
         with End_of_file -> ());
        parse_lines (List.rev !lines))
  end

let partition t (diags : Diag.t list) =
  List.partition (fun (d : Diag.t) -> List.mem d.Diag.fp t.entries) diags

let stale t (diags : Diag.t list) =
  List.filter
    (fun entry ->
      not (List.exists (fun (d : Diag.t) -> d.Diag.fp = entry) diags))
    t.entries
