open Mrdb_storage
module Codec = Mrdb_util.Codec

(* Built-in command vocabulary.  Column-addressed single-cell updates are
   the hot case (the paper's "numerical field updates"); the first eight
   columns get their own op ids so the column index rides the tag byte
   for free.  Generic forms cover wider schemas. *)
let op_insert_ints = 1
let op_delete = 2
let op_add_i64 = 3 (* args = [col; delta] *)
let op_set_i64 = 4 (* args = [col; value] *)
let op_add_col0 = 8 (* 8..15: add args.(0) into column (op - 8) *)
let op_set_col0 = 16 (* 16..23: set column (op - 16) to args.(0) *)
let folded_cols = 8

let fatal fmt = Mrdb_util.Fatal.invariantf ~mod_:"Replay" fmt

(* All-Int canonical tuple encoding: one tag byte '\000' + 8-byte i64 per
   column.  The partition-level appliers patch these cells directly; the
   cell layout is locked by test_logical's relation-vs-partition
   equivalence check. *)
let cell_bytes = 9

let addr_of part ~slot =
  Addr.make
    ~segment:(Partition.segment_id part)
    ~partition:(Partition.partition_id part)
    ~slot

let check_live p ~slot =
  if not (Partition.is_live p ~slot) then
    fatal "command addresses dead slot %d in partition %d.%d" slot
      (Partition.segment_id p) (Partition.partition_id p)

let check_int_col rel ~col =
  let schema = Relation.schema rel in
  if col < 0 || col >= Schema.arity schema then
    fatal "column %d out of range (arity %d)" col (Schema.arity schema);
  match Schema.column_type schema col with
  | Schema.Int -> ()
  | Schema.Float | Schema.Str -> fatal "column %d is not Int-typed" col

(* Validate-and-read an Int cell out of raw tuple bytes. *)
let int_cell data ~col =
  let off = col * cell_bytes in
  if col < 0 || off + cell_bytes > Bytes.length data then
    fatal "column %d out of range (%d tuple bytes)" col (Bytes.length data);
  if Bytes.get data off <> '\000' then
    fatal "column %d is not an Int cell" col;
  Codec.get_i64 data (off + 1)

let read_cell_rel rel part ~slot ~col =
  check_int_col rel ~col;
  match Relation.read rel (addr_of part ~slot) with
  | None -> fatal "command addresses dead slot %d" slot
  | Some tuple -> (
      match Tuple.field tuple col with
      | Schema.I v -> v
      | Schema.F _ | Schema.S _ -> fatal "column %d is not an Int value" col)

let patch_cell_part p ~slot ~col v =
  check_live p ~slot;
  match Partition.read p ~slot with
  | None -> fatal "command addresses dead slot %d" slot
  | Some data ->
      ignore (int_cell data ~col);
      Codec.put_i64 data ((col * cell_bytes) + 1) v;
      Partition.update_at p ~slot data

let set_col target ~slot ~col v =
  match target with
  | Dispatch.Rel { rel; part } ->
      ignore (read_cell_rel rel part ~slot ~col);
      ignore
        (Relation.update_field rel ~log:Relation.null_sink (addr_of part ~slot)
           col (Schema.I v))
  | Dispatch.Part p -> patch_cell_part p ~slot ~col v

let add_col target ~slot ~col delta =
  match target with
  | Dispatch.Rel { rel; part } ->
      let old = read_cell_rel rel part ~slot ~col in
      ignore
        (Relation.update_field rel ~log:Relation.null_sink (addr_of part ~slot)
           col
           (Schema.I (Int64.add old delta)))
  | Dispatch.Part p ->
      let old = match Partition.read p ~slot with
        | Some data -> int_cell data ~col
        | None -> fatal "command addresses dead slot %d" slot
      in
      patch_cell_part p ~slot ~col (Int64.add old delta)

let insert_ints ?alloc target ~slot args =
  let n = Array.length args in
  let part =
    match target with Dispatch.Rel { part; _ } -> part | Dispatch.Part p -> p
  in
  if Partition.is_live part ~slot then fatal "insert into live slot %d" slot;
  let buf =
    match target with
    | Dispatch.Rel { rel; _ } ->
        let schema = Relation.schema rel in
        if Schema.arity schema <> n then
          fatal "insert arity %d vs schema arity %d" n (Schema.arity schema);
        for col = 0 to n - 1 do
          check_int_col rel ~col
        done;
        let tuple = Array.map (fun v -> Schema.I v) args in
        let size = Tuple.encoded_size schema tuple in
        let b = match alloc with Some a -> a size | None -> Bytes.create size in
        ignore (Tuple.encode_into schema tuple b 0);
        b
    | Dispatch.Part _ ->
        let size = n * cell_bytes in
        let b = match alloc with Some a -> a size | None -> Bytes.create size in
        for i = 0 to n - 1 do
          Bytes.set b (i * cell_bytes) '\000';
          Codec.put_i64 b ((i * cell_bytes) + 1) args.(i)
        done;
        b
  in
  Partition.insert_at part ~slot buf

let delete ?alloc target ~slot =
  match target with
  | Dispatch.Rel { rel; part } ->
      check_live part ~slot;
      ignore
        (Relation.delete rel ?alloc ~log:Relation.null_sink (addr_of part ~slot))
  | Dispatch.Part p ->
      check_live p ~slot;
      Partition.delete_at p ~slot

let col_of_arg v =
  let col = Int64.to_int v in
  if col < 0 || col > 255 || not (Int64.equal (Int64.of_int col) v) then
    fatal "bad column argument %Ld" v;
  col

let builtin () =
  let t = Dispatch.create () in
  Dispatch.register t ~op_id:op_insert_ints (fun ?alloc target ~key ~args ->
      insert_ints ?alloc target ~slot:key args);
  Dispatch.register t ~op_id:op_delete (fun ?alloc target ~key ~args ->
      if Array.length args <> 0 then fatal "delete takes no arguments";
      delete ?alloc target ~slot:key);
  Dispatch.register t ~op_id:op_add_i64 (fun ?alloc:_ target ~key ~args ->
      match args with
      | [| col; delta |] -> add_col target ~slot:key ~col:(col_of_arg col) delta
      | _ -> fatal "add takes [col; delta]");
  Dispatch.register t ~op_id:op_set_i64 (fun ?alloc:_ target ~key ~args ->
      match args with
      | [| col; v |] -> set_col target ~slot:key ~col:(col_of_arg col) v
      | _ -> fatal "set takes [col; value]");
  for col = 0 to folded_cols - 1 do
    Dispatch.register t ~op_id:(op_add_col0 + col)
      (fun ?alloc:_ target ~key ~args ->
        match args with
        | [| delta |] -> add_col target ~slot:key ~col delta
        | _ -> fatal "column add takes [delta]");
    Dispatch.register t ~op_id:(op_set_col0 + col)
      (fun ?alloc:_ target ~key ~args ->
        match args with
        | [| v |] -> set_col target ~slot:key ~col v
        | _ -> fatal "column set takes [value]")
  done;
  t

(* The process-wide table every replayer shares.  Commands are only
   meaningful under one interpretation, so there is exactly one table on
   the replay side; tests build private tables via [builtin]/[register]. *)
let default = lazy (builtin ())

let apply_cmd ?alloc ~target (cmd : Cmd_op.t) =
  (match target with
  | Dispatch.Rel { rel; _ } ->
      if Relation.id rel <> cmd.Cmd_op.rel_id then
        fatal "command for relation %d replayed against relation %d"
          cmd.Cmd_op.rel_id (Relation.id rel)
  | Dispatch.Part _ -> ());
  match Dispatch.find (Lazy.force default) cmd.Cmd_op.op_id with
  | Some h -> h ?alloc target ~key:cmd.Cmd_op.key ~args:cmd.Cmd_op.args
  | None -> fatal "no handler registered for op %d" cmd.Cmd_op.op_id
