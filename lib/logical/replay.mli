(** The logical replay engine: applies command records during recovery.

    Restart recovery hands {!apply_cmd} a {!Dispatch.Rel} target (catalog
    schema in hand) and commands replay through the relation layer —
    [Relation.update_field]/[Relation.delete] with [?alloc] arena routing
    preserved; inserts pin the logged slot via [Partition.insert_at] so
    the slot directory reproduces the primary's exactly.  The warm-standby
    audit hands a {!Dispatch.Part} target and the same commands replay as
    fixed-width cell patches with no schema at all.  Both paths yield
    byte-identical partitions (locked by test_logical).

    All malformed-command failures raise [Mrdb_util.Fatal.Invariant] —
    the replica audit already maps that to a divergence verdict. *)

(** Built-in op ids (registered by {!builtin}): *)

val op_insert_ints : int
(** 1: insert; key = slot, args = the column values (all-Int schema). *)

val op_delete : int
(** 2: delete; key = slot, no args. *)

val op_add_i64 : int
(** 3: args = [col; delta] — add [delta] to Int column [col]. *)

val op_set_i64 : int
(** 4: args = [col; value] — set Int column [col]. *)

val op_add_col0 : int
(** 8..15: add args.(0) into column (op - 8) — the column index rides the
    tag byte for the first {!folded_cols} columns. *)

val op_set_col0 : int
(** 16..23: set column (op - 16) to args.(0). *)

val folded_cols : int

val builtin : unit -> Dispatch.t
(** A fresh dispatch table carrying the built-in vocabulary above.
    Further [Dispatch.register] calls extend it (tests only; the replay
    side uses the shared default table). *)

val apply_cmd :
  ?alloc:(int -> bytes) -> target:Dispatch.target -> Cmd_op.t -> unit
(** Apply one command via the shared built-in table.
    @raise Mrdb_util.Fatal.Invariant on an unregistered op id, a dead or
    unexpectedly-live slot, a non-Int cell, or a relation-id mismatch. *)
