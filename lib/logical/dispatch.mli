(** The replay dispatch table: operation id -> command handler.

    Commands are meaningless without the table that interprets them; it is
    the logical subsystem's equivalent of [Part_op.apply].  Registration
    is confined to this subsystem (lint R9 "replay dispatch table"
    resource) so every replayer — restart recovery and the standby audit
    alike — interprets a given op id identically. *)

open Mrdb_storage

(** Where a command applies.  [Rel] replays through the relation layer
    (schema available, the restart-recovery path); [Part] replays at the
    partition-byte level (the schema-free standby audit path).  Both
    produce byte-identical partitions for the all-Int relations commands
    are emitted for. *)
type target =
  | Rel of { rel : Relation.t; part : Partition.t }
  | Part of Partition.t

type handler = ?alloc:(int -> bytes) -> target -> key:int -> args:int64 array -> unit
(** [alloc] preserves the caller's arena routing for staging buffers
    (tuple images built during replay), mirroring the relation layer's
    [?alloc] discipline. *)

type t

val create : unit -> t

val register : t -> op_id:int -> handler -> unit
(** @raise Mrdb_util.Fatal.Misuse on an out-of-range or already-taken
    op id — the table is write-once per op. *)

val find : t -> int -> handler option

val registered : t -> int list
(** Registered op ids, ascending. *)
