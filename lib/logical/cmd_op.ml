(* Logical (command) REDO records.

   A command names an operation in the replay dispatch table plus the
   arguments needed to redo it through the relation layer, instead of
   carrying the physical after-image.  The operation id itself is not
   part of this encoding: Log_record folds it into the record's tag byte
   (tag bytes >= 16 encode [16 + op_id]), so a command record costs no
   more header bytes than a physical one. *)

let max_op_id = 239 (* tag byte 16 + op_id must fit one byte *)

type t = { op_id : int; rel_id : int; key : int; args : int64 array }

let make ~op_id ~rel_id ~key ~args =
  if op_id < 1 || op_id > max_op_id then
    Mrdb_util.Fatal.misusef "Cmd_op: op id %d out of range [1..%d]" op_id
      max_op_id;
  if rel_id < 0 then Mrdb_util.Fatal.misuse "Cmd_op.make: negative relation id";
  if key < 0 then Mrdb_util.Fatal.misuse "Cmd_op.make: negative key";
  { op_id; rel_id; key; args }

(* -- zigzag varints --------------------------------------------------------

   The shared Codec varints are unsigned (negative input is a misuse);
   command arguments are signed deltas, so they ride a zigzag mapping.
   Arguments live in the native-int range that survives [lsl 1] — checked
   by [arg_representable]; the emitter falls back to a physical record for
   anything wider, so replay never sees a wrapped value. *)

let sign_shift = Sys.int_size - 2 (* 62 on 64-bit: the top value bit *)

let arg_representable v =
  let i = Int64.to_int v in
  Int64.equal (Int64.of_int i) v && i asr sign_shift = i asr (sign_shift + 1)

let zigzag i = (i lsl 1) lxor (i asr (Sys.int_size - 1))
let unzigzag u = (u lsr 1) lxor (- (u land 1))

let zigzag_of_arg v =
  if not (arg_representable v) then
    Mrdb_util.Fatal.misusef "Cmd_op: argument %Ld exceeds the zigzag range" v;
  zigzag (Int64.to_int v)

(* -- wire format -----------------------------------------------------------

   varint rel_id | varint key | zigzag-varint arg ...

   No argument count: arguments run to the end of the record frame, whose
   length the SLB/log-page framing already carries (u16 frames), exactly
   like [Part_op] data runs. *)

let encoded_size t =
  let open Mrdb_util.Codec in
  Array.fold_left
    (fun acc v -> acc + varint_size (zigzag_of_arg v))
    (varint_size t.rel_id + varint_size t.key)
    t.args

let encode_into t b ~pos =
  let open Mrdb_util.Codec in
  let pos = put_varint b pos t.rel_id in
  let pos = put_varint b pos t.key in
  Array.fold_left (fun pos v -> put_varint b pos (zigzag_of_arg v)) pos t.args

let encode enc t =
  let open Mrdb_util.Codec.Enc in
  varint enc t.rel_id;
  varint enc t.key;
  Array.iter (fun v -> varint enc (zigzag_of_arg v)) t.args

(* Decode a command body that ends exactly at absolute offset [stop]
   (frame end).  A varint straddling [stop] lands past it and is reported
   as a frame-length invariant, never read into the next frame. *)
let decode ~op_id dec ~stop =
  let open Mrdb_util.Codec.Dec in
  let rel_id = varint dec in
  let key = varint dec in
  let rec parse acc =
    if pos dec >= stop then List.rev acc
    else parse (Int64.of_int (unzigzag (varint dec)) :: acc)
  in
  let args = Array.of_list (parse []) in
  if pos dec <> stop then
    Mrdb_util.Fatal.invariantf ~mod_:"Cmd_op"
      "decode: arguments overrun the record frame (pos %d, frame end %d)"
      (pos dec) stop;
  if op_id < 1 || op_id > max_op_id then
    Mrdb_util.Fatal.invariantf ~mod_:"Cmd_op" "decode: bad op id %d" op_id;
  if rel_id < 0 || key < 0 then
    Mrdb_util.Fatal.invariant ~mod_:"Cmd_op" "decode: negative field";
  { op_id; rel_id; key; args }

let equal a b =
  a.op_id = b.op_id && a.rel_id = b.rel_id && a.key = b.key
  && Array.length a.args = Array.length b.args
  && Array.for_all2 Int64.equal a.args b.args

let pp ppf t =
  Format.fprintf ppf "cmd op=%d rel=%d key=%d [%s]" t.op_id t.rel_id t.key
    (String.concat ";"
       (Array.to_list (Array.map (Printf.sprintf "%Ld") t.args)))
