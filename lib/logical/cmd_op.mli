(** Logical (command) REDO records.

    Where a physical {!Mrdb_storage.Part_op} carries the after-image bytes
    of a slot, a command carries an operation id (an index into the replay
    dispatch table, see {!Dispatch}), the owning relation's id, a key (the
    slot for the built-in operations) and signed integer arguments.  The
    operation id is folded into the enclosing log record's tag byte, so
    commands share the WAL stream, framing and peek scans with physical
    records unchanged.

    A debit/credit update shrinks from a ~30-byte after-image to a
    few-byte delta — the "8 to 24 bytes" logging regime of the paper,
    taken further in the direction of Yao et al.'s command logging. *)

type t = { op_id : int; rel_id : int; key : int; args : int64 array }

val max_op_id : int
(** 239: tag byte [16 + op_id] must fit one byte. *)

val make : op_id:int -> rel_id:int -> key:int -> args:int64 array -> t
(** @raise Mrdb_util.Fatal.Misuse on an out-of-range op id or negative
    relation id / key. *)

val arg_representable : int64 -> bool
(** Whether a value survives the zigzag-varint mapping (native-int range
    minus one bit).  The emitter checks this and falls back to a physical
    record for wider values. *)

val encoded_size : t -> int
(** Body bytes (excluding the tag byte carried by {!Mrdb_wal.Log_record}),
    computed arithmetically — same zero-copy discipline as [Part_op]. *)

val encode_into : t -> bytes -> pos:int -> int
(** Serialize the body at [pos]; returns [pos + encoded_size t]. *)

val encode : Mrdb_util.Codec.Enc.t -> t -> unit

val decode : op_id:int -> Mrdb_util.Codec.Dec.t -> stop:int -> t
(** Decode a command body ending exactly at absolute offset [stop] (the
    record frame end; arguments carry no count and run to it).
    @raise Mrdb_util.Fatal.Invariant on malformed input or when the body
    does not consume exactly the frame. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
