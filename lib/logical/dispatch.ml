open Mrdb_storage

(* Replay targets.  A restarting node has the catalog and replays through
   the relation layer; a warm standby audits shipped artifacts with no
   schema access and replays at the partition-byte level (legal because
   commands are only ever emitted for all-Int relations, whose canonical
   tuple encoding is fixed-width — patching the cell bytes produces
   exactly what a relation-layer re-encode would). *)
type target =
  | Rel of { rel : Relation.t; part : Partition.t }
  | Part of Partition.t

type handler = ?alloc:(int -> bytes) -> target -> key:int -> args:int64 array -> unit

type t = { handlers : handler option array }

let create () = { handlers = Array.make (Cmd_op.max_op_id + 1) None }

let register t ~op_id h =
  if op_id < 1 || op_id > Cmd_op.max_op_id then
    Mrdb_util.Fatal.misusef "Dispatch: op id %d out of range" op_id;
  (match t.handlers.(op_id) with
  | Some _ -> Mrdb_util.Fatal.misusef "Dispatch: op id %d already registered" op_id
  | None -> ());
  t.handlers.(op_id) <- Some h

let find t op_id =
  if op_id < 1 || op_id > Cmd_op.max_op_id then None else t.handlers.(op_id)

let registered t =
  let acc = ref [] in
  Array.iteri (fun i h -> if h <> None then acc := i :: !acc) t.handlers;
  List.rev !acc
