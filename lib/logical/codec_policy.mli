(** The adaptive per-partition codec policy.

    Yao et al. ("Adaptive Logging for Distributed In-memory Databases")
    show neither pure command logging nor pure physical logging wins: the
    right unit of choice is the partition.  This object watches the three
    signals the commit path already produces — update rate vs insert rate
    (the bulk-load flag), and physical vs command record sizes — and flips
    a hot, update-dominated, well-formed partition to command logging; a
    bulk-loading or cold partition stays physical.

    Decisions are windowed counters only, no clock reads: the policy is
    deterministic under the executor schedule (lint R8). *)

open Mrdb_storage

type mode = Physical | Logical | Adaptive
(** Forced modes for [Config.redo_codec]: [Physical] never asks the
    policy (byte-identical to the pre-logical WAL stream), [Logical]
    encodes every representable operation as a command, [Adaptive] flips
    per partition. *)

type t

val default_window : int
(** Operations per decision window (64). *)

val create : ?window:int -> mode:mode -> unit -> t
val mode : t -> mode

val set_on_flip : t -> (Addr.partition -> logical:bool -> unit) -> unit
(** Observation hook invoked on every per-partition flip (trace counters
    and the flight recorder are wired here by the core layer; the policy
    itself stays below obs). *)

val use_command : t -> Addr.partition -> kind:[ `Insert | `Update ] ->
  phys_size:int -> cmd_size:int -> bool
(** Called once per representable operation with both candidate encoding
    sizes; returns whether to emit the command form, and (under
    [Adaptive]) feeds the window counters. *)

val partition_logical : t -> Addr.partition -> bool
(** The current per-partition decision (introspection/tests). *)

val pp_mode : Format.formatter -> mode -> unit
