open Mrdb_storage

type mode = Physical | Logical | Adaptive

(* Per-partition counters, all fed from the commit path — deterministic
   arithmetic only (no clocks), so the adaptive decision replays
   identically under the deterministic executor schedule. *)
type stats = {
  mutable updates : int;
  mutable inserts : int;
  mutable phys_bytes : int;
  mutable cmd_bytes : int;
  mutable window_ops : int;
  mutable logical : bool;
}

type t = {
  mode : mode;
  window : int;
  stats : stats Addr.Partition_table.t;
  mutable on_flip : Addr.partition -> logical:bool -> unit;
}

let default_window = 64

let create ?(window = default_window) ~mode () =
  if window < 1 then Mrdb_util.Fatal.misuse "Codec_policy: window must be >= 1";
  { mode; window; stats = Addr.Partition_table.create 64; on_flip = (fun _ ~logical:_ -> ()) }

let mode t = t.mode
let set_on_flip t f = t.on_flip <- f

let stats_of t part =
  match Addr.Partition_table.find t.stats part with
  | s -> s
  | exception Not_found ->
      let s =
        {
          updates = 0;
          inserts = 0;
          phys_bytes = 0;
          cmd_bytes = 0;
          window_ops = 0;
          logical = false;
        }
      in
      Addr.Partition_table.add t.stats part s;
      s

let partition_logical t part =
  match t.mode with
  | Physical -> false
  | Logical -> true
  | Adaptive -> (
      match Addr.Partition_table.find t.stats part with
      | s -> s.logical
      | exception Not_found -> false)

(* One decision per window: a partition flips to command logging when its
   window is update-dominated (not a bulk load — physical insert replay
   is a memcpy and images cover loads anyway) and the command encodings
   actually pay (physical bytes at least twice the command bytes). *)
let decide t part (s : stats) =
  let logical = s.updates >= 2 * s.inserts && s.phys_bytes >= 2 * s.cmd_bytes in
  if logical <> s.logical then begin
    s.logical <- logical;
    t.on_flip part ~logical
  end;
  s.updates <- 0;
  s.inserts <- 0;
  s.phys_bytes <- 0;
  s.cmd_bytes <- 0;
  s.window_ops <- 0

let use_command t part ~kind ~phys_size ~cmd_size =
  match t.mode with
  | Physical -> false
  | Logical -> true
  | Adaptive ->
      let s = stats_of t part in
      (match kind with
      | `Update -> s.updates <- s.updates + 1
      | `Insert -> s.inserts <- s.inserts + 1);
      s.phys_bytes <- s.phys_bytes + phys_size;
      s.cmd_bytes <- s.cmd_bytes + cmd_size;
      s.window_ops <- s.window_ops + 1;
      let use = s.logical in
      if s.window_ops >= t.window then decide t part s;
      use

let pp_mode ppf m =
  Format.pp_print_string ppf
    (match m with
    | Physical -> "physical"
    | Logical -> "logical"
    | Adaptive -> "adaptive")
