(** Deterministic fault plans.

    A plan is a list of fault events derived from a seed (or written out by
    hand) that the {!Injector} arms against a machine's devices.  The same
    seed always yields the same plan, so any torture-campaign failure
    replays exactly.

    Fault taxonomy (paper §3.1's hardware assumptions, violated on
    purpose): transient read errors that vanish on retry, latent sector
    corruption on one copy, outright media failure of one mirror, single
    torn page writes at a crash, and (scripted only) stable-memory bit
    rot behind the wild-write protection. *)

type target = Log_primary | Log_mirror | Ckpt
type side = Primary | Mirror

type event =
  | Transient_read of { target : target; at_read : int }
      (** The [at_read]-th read op on that device fails once (1-based,
          counted per device across the whole run). *)
  | Corrupt_page of { target : target; page : int; at_us : float }
      (** Latent corruption: flip bytes of the media copy at the given
          simulated time.  Detected by checksum on the next read. *)
  | Fail_side of { side : side; at_us : float }
      (** Media failure of one log mirror at the given time. *)
  | Torn_write of { target : target; keep_fraction : float }
      (** At the next crash, the write in service on that device tears:
          only the leading [keep_fraction] of its bytes reach the media. *)
  | Corrupt_stable of { off : int; len : int; at_us : float }
      (** Stable-memory bit rot (scripted plans only — random campaigns
          never inject it because a single cell loss is only survivable
          where the layout keeps redundancy, i.e. the well-known area). *)
  | Fail_executor of { executor : int; at_us : float }
      (** Logical executor failure: the harness's [on_executor_fail]
          callback fires at the given time (typically marking the
          executor failed in its {!Mrdb_exec.Schedule}).  The executor's
          SLB region keeps its committed records — recovery drains all
          regions regardless of executor liveness. *)

type t

val scripted : event list -> t

val random :
  ?executors:int ->
  seed:int -> horizon_us:float -> window_pages:int -> ckpt_pages:int ->
  unit -> t
(** A seeded plan confined to a single failure domain: one victim log side
    absorbs all log corruption / failure / torn-write events, so the other
    mirror stays intact and the committed prefix remains recoverable.
    Checkpoint-disk events assume the archive is enabled.  With
    [executors > 1] (default 1) the plan may additionally fail logical
    executors; those draws happen after everything else, so the plan for
    a given seed at [executors = 1] is unchanged by the option. *)

val events : t -> event list
val seed : t -> int option

val pp : Format.formatter -> t -> unit
