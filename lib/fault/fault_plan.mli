(** Deterministic fault plans.

    A plan is a list of fault events derived from a seed (or written out by
    hand) that the {!Injector} arms against a machine's devices.  The same
    seed always yields the same plan, so any torture-campaign failure
    replays exactly.

    Fault taxonomy (paper §3.1's hardware assumptions, violated on
    purpose): transient read errors that vanish on retry, latent sector
    corruption on one copy, outright media failure of one mirror, single
    torn page writes at a crash, and (scripted only) stable-memory bit
    rot behind the wild-write protection. *)

type target = Log_primary | Log_mirror | Ckpt
type side = Primary | Mirror

type node = Primary_node | Standby_node
(** The two machines of a replicated pair (see {!Mrdb_replica}).  A plan
    armed against a single-node harness marks node events spent
    silently. *)

type event =
  | Transient_read of { target : target; at_read : int }
      (** The [at_read]-th read op on that device fails once (1-based,
          counted per device across the whole run). *)
  | Corrupt_page of { target : target; page : int; at_us : float }
      (** Latent corruption: flip bytes of the media copy at the given
          simulated time.  Detected by checksum on the next read. *)
  | Fail_side of { side : side; at_us : float }
      (** Media failure of one log mirror at the given time. *)
  | Torn_write of { target : target; keep_fraction : float }
      (** At the next crash, the write in service on that device tears:
          only the leading [keep_fraction] of its bytes reach the media. *)
  | Corrupt_stable of { off : int; len : int; at_us : float }
      (** Stable-memory bit rot (scripted plans only — random campaigns
          never inject it because a single cell loss is only survivable
          where the layout keeps redundancy, i.e. the well-known area). *)
  | Fail_executor of { executor : int; at_us : float }
      (** Logical executor failure: the harness's [on_executor_fail]
          callback fires at the given time (typically marking the
          executor failed in its {!Mrdb_exec.Schedule}).  The executor's
          SLB region keeps its committed records — recovery drains all
          regions regardless of executor liveness. *)
  | Fail_node of { node : node; at_us : float }
      (** Whole-node crash: the harness's [on_node_fail] callback fires
          (typically {!Mrdb_replica.Cluster.crash_node}).  {e Failure
          domain}: every [Fail_node] of one plan targets the same node —
          see {!node_fault_domain_ok}. *)
  | Resume_node of { node : node; at_us : float }
      (** Node restart: the harness's [on_node_resume] callback fires
          (typically recover-and-rejoin).  Drawn paired after a
          [Fail_node] of the same node in random plans. *)
  | Partition_link of { delay_us : float; drop : bool; at_us : float; heal_us : float }
      (** Link degradation from [at_us] to [heal_us]: shipped frames gain
          [delay_us] extra latency, and with [drop] set they are discarded
          outright (the ship protocol's cursor/ack resend recovers).  The
          injector restores the healthy link at [heal_us], rescheduling
          the heal across crashes. *)

type t

val scripted : event list -> t

val random :
  ?executors:int ->
  ?nodes:bool ->
  seed:int -> horizon_us:float -> window_pages:int -> ckpt_pages:int ->
  unit -> t
(** A seeded plan confined to a single failure domain: one victim log side
    absorbs all log corruption / failure / torn-write events, so the other
    mirror stays intact and the committed prefix remains recoverable.
    Checkpoint-disk events assume the archive is enabled.  With
    [executors > 1] (default 1) the plan may additionally fail logical
    executors; those draws happen after everything else, so the plan for
    a given seed at [executors = 1] is unchanged by the option.  With
    [nodes] (default false) the plan may additionally crash/restart one
    {e victim node} and degrade the replication link; those draws happen
    after the executor draws, so plans without the option are unchanged
    again, and the node draws obey the node failure domain: a random plan
    never aims [Fail_node] at both nodes (validated at construction —
    with one node always alive, a replication campaign always has a
    survivor whose state the acceptance check can interrogate). *)

val node_fault_domain_ok : t -> bool
(** Whether the plan respects the node failure domain (no two [Fail_node]
    events naming different nodes).  Always true for {!random} plans —
    exposed so campaigns can assert it and scripted plans can check
    themselves. *)

val events : t -> event list
val seed : t -> int option

val pp : Format.formatter -> t -> unit
