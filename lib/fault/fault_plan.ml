type target = Log_primary | Log_mirror | Ckpt
type side = Primary | Mirror
type node = Primary_node | Standby_node

type event =
  | Transient_read of { target : target; at_read : int }
  | Corrupt_page of { target : target; page : int; at_us : float }
  | Fail_side of { side : side; at_us : float }
  | Torn_write of { target : target; keep_fraction : float }
  | Corrupt_stable of { off : int; len : int; at_us : float }
  | Fail_executor of { executor : int; at_us : float }
  | Fail_node of { node : node; at_us : float }
  | Resume_node of { node : node; at_us : float }
  | Partition_link of { delay_us : float; drop : bool; at_us : float; heal_us : float }

type t = { seed : int option; events : event list }

let scripted events = { seed = None; events }

let events t = t.events
let seed t = t.seed

(* The node-level failure domain: every [Fail_node] in one plan must aim at
   the same node, mirroring the single-victim-log-side rule below — with
   one node always alive a two-node campaign keeps a survivor to promote,
   so the commit-order-prefix acceptance stays decidable. *)
let node_fault_domain_ok t =
  let victims =
    List.filter_map
      (function Fail_node { node; _ } -> Some node | _ -> None)
      t.events
  in
  not
    (List.mem Primary_node victims && List.mem Standby_node victims)

(* Single-failure-domain discipline: each random plan picks ONE victim log
   side and confines corruptions, the mirror failure and torn log writes to
   it, so the other mirror always holds an intact copy and a committed
   prefix stays recoverable without the archive.  Checkpoint-disk
   corruption is media the archive covers, so it is fair game on any plan
   run with [archive = true].  Stable-memory corruption is never random —
   only scripted tests aim at the well-known area's redundancy. *)
let random ?(executors = 1) ?(nodes = false) ~seed ~horizon_us ~window_pages
    ~ckpt_pages () =
  let rng = Mrdb_util.Rng.of_int seed in
  let victim = if Mrdb_util.Rng.bool rng then Primary else Mirror in
  let victim_target = match victim with Primary -> Log_primary | Mirror -> Log_mirror in
  let at () = Mrdb_util.Rng.float rng horizon_us in
  let events = ref [] in
  let push e = events := e :: !events in
  (* Transient read errors: any target, vanish on retry. *)
  for _ = 1 to Mrdb_util.Rng.int rng 4 do
    let target = Mrdb_util.Rng.pick rng [| Log_primary; Log_mirror; Ckpt |] in
    push (Transient_read { target; at_read = Mrdb_util.Rng.int_in rng 1 40 })
  done;
  (* Latent sector corruption on the victim log side. *)
  for _ = 1 to Mrdb_util.Rng.int rng 3 do
    push
      (Corrupt_page
         { target = victim_target; page = Mrdb_util.Rng.int rng window_pages; at_us = at () })
  done;
  (* Checkpoint-image corruption (archive covers it). *)
  if Mrdb_util.Rng.int rng 4 = 0 then
    push (Corrupt_page { target = Ckpt; page = Mrdb_util.Rng.int rng ckpt_pages; at_us = at () });
  (* Outright media failure of the victim mirror. *)
  if Mrdb_util.Rng.int rng 3 = 0 then push (Fail_side { side = victim; at_us = at () });
  (* Torn in-service write at the next crash. *)
  if Mrdb_util.Rng.bool rng then
    push
      (Torn_write
         {
           target = victim_target;
           keep_fraction = 0.1 +. Mrdb_util.Rng.float rng 0.8;
         });
  if Mrdb_util.Rng.int rng 4 = 0 then
    push
      (Torn_write { target = Ckpt; keep_fraction = 0.1 +. Mrdb_util.Rng.float rng 0.8 });
  (* Executor failure domains — drawn LAST and only when the machine runs
     more than one executor, so single-executor plans consume the identical
     RNG stream they did before executor faults existed (seed replays are
     stable across the feature's introduction). *)
  if executors > 1 then
    for _ = 1 to Mrdb_util.Rng.int rng 3 do
      push
        (Fail_executor { executor = Mrdb_util.Rng.int rng executors; at_us = at () })
    done;
  (* Node-level events — drawn after ALL single-node draws (and gated on
     [nodes]) so single-node plans for a given seed are byte-identical to
     what they were before replication existed.  One victim node absorbs
     every [Fail_node]; link degradation carries no node identity, so it
     is fair game regardless of the victim (like Ckpt corruption above). *)
  if nodes then begin
    let victim_node =
      if Mrdb_util.Rng.bool rng then Primary_node else Standby_node
    in
    for _ = 1 to Mrdb_util.Rng.int rng 3 do
      let fail_at = at () in
      push (Fail_node { node = victim_node; at_us = fail_at });
      push
        (Resume_node
           {
             node = victim_node;
             at_us = fail_at +. Mrdb_util.Rng.float rng (horizon_us /. 4.0);
           })
    done;
    for _ = 1 to Mrdb_util.Rng.int rng 3 do
      let at_us = at () in
      push
        (Partition_link
           {
             delay_us = Mrdb_util.Rng.float rng 20_000.0;
             drop = Mrdb_util.Rng.int rng 3 = 0;
             at_us;
             heal_us = at_us +. Mrdb_util.Rng.float rng (horizon_us /. 4.0);
           })
    done
  end;
  let t = { seed = Some seed; events = List.rev !events } in
  if not (node_fault_domain_ok t) then
    Mrdb_util.Fatal.invariant ~mod_:"Fault_plan"
      "random plan targets both nodes with Fail_node";
  t

let pp_target ppf = function
  | Log_primary -> Format.fprintf ppf "log.primary"
  | Log_mirror -> Format.fprintf ppf "log.mirror"
  | Ckpt -> Format.fprintf ppf "ckpt"

let pp_side ppf = function
  | Primary -> Format.fprintf ppf "primary"
  | Mirror -> Format.fprintf ppf "mirror"

let pp_node ppf = function
  | Primary_node -> Format.fprintf ppf "node.primary"
  | Standby_node -> Format.fprintf ppf "node.standby"

let pp_event ppf = function
  | Transient_read { target; at_read } ->
      Format.fprintf ppf "transient-read %a @@read#%d" pp_target target at_read
  | Corrupt_page { target; page; at_us } ->
      Format.fprintf ppf "corrupt-page %a page=%d @@%.0fus" pp_target target page at_us
  | Fail_side { side; at_us } ->
      Format.fprintf ppf "fail-side %a @@%.0fus" pp_side side at_us
  | Torn_write { target; keep_fraction } ->
      Format.fprintf ppf "torn-write %a keep=%.2f" pp_target target keep_fraction
  | Corrupt_stable { off; len; at_us } ->
      Format.fprintf ppf "corrupt-stable [%d,+%d) @@%.0fus" off len at_us
  | Fail_executor { executor; at_us } ->
      Format.fprintf ppf "fail-executor e%d @@%.0fus" executor at_us
  | Fail_node { node; at_us } ->
      Format.fprintf ppf "fail-node %a @@%.0fus" pp_node node at_us
  | Resume_node { node; at_us } ->
      Format.fprintf ppf "resume-node %a @@%.0fus" pp_node node at_us
  | Partition_link { delay_us; drop; at_us; heal_us } ->
      Format.fprintf ppf "partition-link delay=%.0fus drop=%b @@%.0fus..%.0fus"
        delay_us drop at_us heal_us

let pp ppf t =
  (match t.seed with
  | Some s -> Format.fprintf ppf "plan(seed=%d):" s
  | None -> Format.fprintf ppf "plan(scripted):");
  List.iter (fun e -> Format.fprintf ppf "@ %a;" pp_event e) t.events
