(** Arms a {!Fault_plan} against a machine's devices.

    Hook-driven events (transient reads, torn writes) are answered from
    composite per-device fault hooks installed once; timed events
    (corruption, mirror failure, stable rot) are simulation events.  A
    crash ({!Mrdb_sim.Sim.clear}) discards pending timed events, so the
    harness must call {!arm} again after every crash — already-fired
    events are remembered and never fire twice.

    Every injected fault is visible in the trace:
    [fault_transient_reads_injected], [fault_pages_corrupted],
    [fault_mirror_failures_injected], [fault_torn_writes_injected],
    [fault_stable_corruptions_injected], [fault_executor_fails_injected],
    [fault_node_fails_injected], [fault_node_resumes_injected],
    [fault_links_degraded], [fault_links_healed]. *)

type t

val install :
  plan:Fault_plan.t ->
  sim:Mrdb_sim.Sim.t ->
  trace:Mrdb_sim.Trace.t ->
  log:Mrdb_hw.Duplex.t ->
  ?ckpt:Mrdb_hw.Disk.t ->
  ?stable:Mrdb_hw.Stable_mem.t ->
  ?recorder:Mrdb_obs.Flight_recorder.t ->
  ?on_executor_fail:(int -> unit) ->
  ?on_node_fail:(Fault_plan.node -> unit) ->
  ?on_node_resume:(Fault_plan.node -> unit) ->
  ?on_link_change:(delay_us:float -> drop:bool -> unit) ->
  unit ->
  t
(** Install device hooks and schedule the plan's timed events.  Events
    aimed at a device not supplied here are marked spent silently.
    [recorder] additionally receives a [Fault] flight event (tagged with
    the trace-counter name) for every fault that fires.
    [on_executor_fail] receives the executor id of each
    {!Fault_plan.Fail_executor} event as it fires; without it those
    events are marked spent silently.  [on_node_fail]/[on_node_resume]
    receive {!Fault_plan.Fail_node}/{!Fault_plan.Resume_node} the same
    way.  [on_link_change] receives each {!Fault_plan.Partition_link}
    twice: the degraded parameters at [at_us] and
    [~delay_us:0.0 ~drop:false] at [heal_us] (the heal leg is
    re-scheduled by {!arm} if a crash's [Sim.clear] wiped it). *)

val arm : t -> unit
(** (Re-)schedule the not-yet-fired timed events — call after each crash,
    once the simulated queue has been cleared. *)

val fired_count : t -> int
(** Events that have actually fired so far. *)

val plan : t -> Fault_plan.t
