module Trace = Mrdb_sim.Trace
module Sim = Mrdb_sim.Sim
module Disk = Mrdb_hw.Disk
module Duplex = Mrdb_hw.Duplex
module Stable_mem = Mrdb_hw.Stable_mem

type t = {
  plan : Fault_plan.t;
  sim : Sim.t;
  trace : Trace.t;
  log : Duplex.t;
  ckpt : Disk.t option;
  stable : Stable_mem.t option;
  events : Fault_plan.event array;
  fired : bool array;
  recorder : Mrdb_obs.Flight_recorder.t option;
  on_executor_fail : (int -> unit) option;
}

let fired_count t = Array.fold_left (fun n f -> if f then n + 1 else n) 0 t.fired

let fire t i counter =
  t.fired.(i) <- true;
  Trace.incr t.trace counter;
  match t.recorder with
  | None -> ()
  | Some fr -> Mrdb_obs.Flight_recorder.fault fr ~kind:counter

let disk_of t = function
  | Fault_plan.Log_primary -> Some (Duplex.primary t.log)
  | Fault_plan.Log_mirror -> Some (Duplex.mirror t.log)
  | Fault_plan.Ckpt -> t.ckpt

(* One composite hook per physical device: counts its read ops (attempt
   numbers are per-device, across crashes) and answers the injector's
   pending transient-read / torn-write events for that target. *)
let hook_for t target =
  let reads = ref 0 in
  let on_read ~page:_ =
    incr reads;
    let hit = ref None in
    Array.iteri
      (fun i ev ->
        if (not t.fired.(i)) && !hit = None then
          match ev with
          | Fault_plan.Transient_read { target = tg; at_read } when tg = target ->
              if at_read = !reads then begin
                fire t i "fault_transient_reads_injected";
                hit := Some "injected transient read error"
              end
          | _ -> ())
      t.events;
    !hit
  in
  let on_crash_tear ~page:_ ~len =
    let hit = ref None in
    Array.iteri
      (fun i ev ->
        if (not t.fired.(i)) && !hit = None then
          match ev with
          | Fault_plan.Torn_write { target = tg; keep_fraction } when tg = target ->
              fire t i "fault_torn_writes_injected";
              (* A genuine tear: at least one byte written, at least one lost. *)
              let keep = int_of_float (keep_fraction *. float_of_int len) in
              hit := Some (Stdlib.max 1 (Stdlib.min (len - 1) keep))
          | _ -> ())
      t.events;
    !hit
  in
  { Disk.on_read; on_crash_tear }

(* Corruption position derived deterministically from the page number so a
   replayed seed flips the very same bytes. *)
let corruption_span ~page_bytes ~page =
  let len = Stdlib.min 16 page_bytes in
  let at = page * 131 mod (page_bytes - len + 1) in
  (at, len)

let fire_timed t i = function
  | Fault_plan.Corrupt_page { target; page; at_us = _ } -> (
      match disk_of t target with
      | None -> t.fired.(i) <- true (* no such device in this machine *)
      | Some d ->
          if Disk.failed d then t.fired.(i) <- true
          else begin
            let page = page mod Disk.capacity_pages d in
            let at, len =
              corruption_span ~page_bytes:(Disk.params d).Disk.page_bytes ~page
            in
            Disk.corrupt_page d ~page ~at ~len;
            fire t i "fault_pages_corrupted"
          end)
  | Fault_plan.Fail_side { side; at_us = _ } ->
      (match side with
      | Fault_plan.Primary -> Duplex.fail_primary t.log
      | Fault_plan.Mirror -> Duplex.fail_mirror t.log);
      fire t i "fault_mirror_failures_injected"
  | Fault_plan.Corrupt_stable { off; len; at_us = _ } -> (
      match t.stable with
      | None -> t.fired.(i) <- true
      | Some m ->
          Stable_mem.corrupt m ~off ~len;
          fire t i "fault_stable_corruptions_injected")
  | Fault_plan.Fail_executor { executor; at_us = _ } -> (
      match t.on_executor_fail with
      | None -> t.fired.(i) <- true (* harness runs no executor schedule *)
      | Some f ->
          fire t i "fault_executor_fails_injected";
          f executor)
  | Fault_plan.Transient_read _ | Fault_plan.Torn_write _ ->
      Mrdb_util.Fatal.invariant ~mod_:"Injector" "hook-driven event scheduled as timed"

let arm t =
  let now = Sim.now t.sim in
  Array.iteri
    (fun i ev ->
      if not t.fired.(i) then
        let schedule at_us =
          Sim.schedule t.sim ~delay:(Stdlib.max 0.0 (at_us -. now)) (fun () ->
              (* The fired flag also de-duplicates accidental double-arming. *)
              if not t.fired.(i) then fire_timed t i ev)
        in
        match ev with
        | Fault_plan.Corrupt_page { at_us; _ }
        | Fault_plan.Fail_side { at_us; _ }
        | Fault_plan.Corrupt_stable { at_us; _ }
        | Fault_plan.Fail_executor { at_us; _ } ->
            schedule at_us
        | Fault_plan.Transient_read _ | Fault_plan.Torn_write _ -> ())
    t.events

let install ~plan ~sim ~trace ~log ?ckpt ?stable ?recorder ?on_executor_fail () =
  let t =
    {
      plan;
      sim;
      trace;
      log;
      ckpt;
      stable;
      events = Array.of_list (Fault_plan.events plan);
      fired = Array.make (List.length (Fault_plan.events plan)) false;
      recorder;
      on_executor_fail;
    }
  in
  Disk.set_fault_hook (Duplex.primary log) (Some (hook_for t Fault_plan.Log_primary));
  Disk.set_fault_hook (Duplex.mirror log) (Some (hook_for t Fault_plan.Log_mirror));
  (match ckpt with
  | Some d -> Disk.set_fault_hook d (Some (hook_for t Fault_plan.Ckpt))
  | None -> ());
  arm t;
  t

let plan t = t.plan
