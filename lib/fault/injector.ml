module Trace = Mrdb_sim.Trace
module Sim = Mrdb_sim.Sim
module Disk = Mrdb_hw.Disk
module Duplex = Mrdb_hw.Duplex
module Stable_mem = Mrdb_hw.Stable_mem

type t = {
  plan : Fault_plan.t;
  sim : Sim.t;
  trace : Trace.t;
  log : Duplex.t;
  ckpt : Disk.t option;
  stable : Stable_mem.t option;
  events : Fault_plan.event array;
  fired : bool array;
  recorder : Mrdb_obs.Flight_recorder.t option;
  on_executor_fail : (int -> unit) option;
  on_node_fail : (Fault_plan.node -> unit) option;
  on_node_resume : (Fault_plan.node -> unit) option;
  on_link_change : (delay_us:float -> drop:bool -> unit) option;
  (* [Partition_link] events fire twice (degrade, heal); the heal leg gets
     its own spent flag so [arm] can reschedule it across crashes. *)
  healed : bool array;
}

let fired_count t = Array.fold_left (fun n f -> if f then n + 1 else n) 0 t.fired

let fire t i counter =
  t.fired.(i) <- true;
  Trace.incr t.trace counter;
  match t.recorder with
  | None -> ()
  | Some fr -> Mrdb_obs.Flight_recorder.fault fr ~kind:counter

let disk_of t = function
  | Fault_plan.Log_primary -> Some (Duplex.primary t.log)
  | Fault_plan.Log_mirror -> Some (Duplex.mirror t.log)
  | Fault_plan.Ckpt -> t.ckpt

(* One composite hook per physical device: counts its read ops (attempt
   numbers are per-device, across crashes) and answers the injector's
   pending transient-read / torn-write events for that target. *)
let hook_for t target =
  let reads = ref 0 in
  let on_read ~page:_ =
    incr reads;
    let hit = ref None in
    Array.iteri
      (fun i ev ->
        if (not t.fired.(i)) && !hit = None then
          match ev with
          | Fault_plan.Transient_read { target = tg; at_read } when tg = target ->
              if at_read = !reads then begin
                fire t i "fault_transient_reads_injected";
                hit := Some "injected transient read error"
              end
          | _ -> ())
      t.events;
    !hit
  in
  let on_crash_tear ~page:_ ~len =
    let hit = ref None in
    Array.iteri
      (fun i ev ->
        if (not t.fired.(i)) && !hit = None then
          match ev with
          | Fault_plan.Torn_write { target = tg; keep_fraction } when tg = target ->
              fire t i "fault_torn_writes_injected";
              (* A genuine tear: at least one byte written, at least one lost. *)
              let keep = int_of_float (keep_fraction *. float_of_int len) in
              hit := Some (Stdlib.max 1 (Stdlib.min (len - 1) keep))
          | _ -> ())
      t.events;
    !hit
  in
  { Disk.on_read; on_crash_tear }

(* Corruption position derived deterministically from the page number so a
   replayed seed flips the very same bytes. *)
let corruption_span ~page_bytes ~page =
  let len = Stdlib.min 16 page_bytes in
  let at = page * 131 mod (page_bytes - len + 1) in
  (at, len)

let rec fire_timed t i = function
  | Fault_plan.Corrupt_page { target; page; at_us = _ } -> (
      match disk_of t target with
      | None -> t.fired.(i) <- true (* no such device in this machine *)
      | Some d ->
          if Disk.failed d then t.fired.(i) <- true
          else begin
            let page = page mod Disk.capacity_pages d in
            let at, len =
              corruption_span ~page_bytes:(Disk.params d).Disk.page_bytes ~page
            in
            Disk.corrupt_page d ~page ~at ~len;
            fire t i "fault_pages_corrupted"
          end)
  | Fault_plan.Fail_side { side; at_us = _ } ->
      (match side with
      | Fault_plan.Primary -> Duplex.fail_primary t.log
      | Fault_plan.Mirror -> Duplex.fail_mirror t.log);
      fire t i "fault_mirror_failures_injected"
  | Fault_plan.Corrupt_stable { off; len; at_us = _ } -> (
      match t.stable with
      | None -> t.fired.(i) <- true
      | Some m ->
          Stable_mem.corrupt m ~off ~len;
          fire t i "fault_stable_corruptions_injected")
  | Fault_plan.Fail_executor { executor; at_us = _ } -> (
      match t.on_executor_fail with
      | None -> t.fired.(i) <- true (* harness runs no executor schedule *)
      | Some f ->
          fire t i "fault_executor_fails_injected";
          f executor)
  | Fault_plan.Fail_node { node; at_us = _ } -> (
      match t.on_node_fail with
      | None -> t.fired.(i) <- true (* single-node harness *)
      | Some f ->
          fire t i "fault_node_fails_injected";
          f node)
  | Fault_plan.Resume_node { node; at_us = _ } -> (
      match t.on_node_resume with
      | None -> t.fired.(i) <- true
      | Some f ->
          fire t i "fault_node_resumes_injected";
          f node)
  | Fault_plan.Partition_link { delay_us; drop; at_us = _; heal_us } -> (
      match t.on_link_change with
      | None ->
          t.fired.(i) <- true;
          t.healed.(i) <- true
      | Some f ->
          fire t i "fault_links_degraded";
          f ~delay_us ~drop;
          schedule_heal t i heal_us)
  | Fault_plan.Transient_read _ | Fault_plan.Torn_write _ ->
      Mrdb_util.Fatal.invariant ~mod_:"Injector" "hook-driven event scheduled as timed"

and schedule_heal t i heal_us =
  Sim.schedule t.sim
    ~delay:(Stdlib.max 0.0 (heal_us -. Sim.now t.sim))
    (fun () ->
      if not t.healed.(i) then begin
        t.healed.(i) <- true;
        Trace.incr t.trace "fault_links_healed";
        (match t.recorder with
        | None -> ()
        | Some fr -> Mrdb_obs.Flight_recorder.fault fr ~kind:"fault_links_healed");
        match t.on_link_change with
        | None -> ()
        | Some f -> f ~delay_us:0.0 ~drop:false
      end)

let arm t =
  let now = Sim.now t.sim in
  Array.iteri
    (fun i ev ->
      let schedule at_us =
        Sim.schedule t.sim ~delay:(Stdlib.max 0.0 (at_us -. now)) (fun () ->
            (* The fired flag also de-duplicates accidental double-arming. *)
            if not t.fired.(i) then fire_timed t i ev)
      in
      if not t.fired.(i) then
        match ev with
        | Fault_plan.Corrupt_page { at_us; _ }
        | Fault_plan.Fail_side { at_us; _ }
        | Fault_plan.Corrupt_stable { at_us; _ }
        | Fault_plan.Fail_executor { at_us; _ }
        | Fault_plan.Fail_node { at_us; _ }
        | Fault_plan.Resume_node { at_us; _ }
        | Fault_plan.Partition_link { at_us; _ } ->
            schedule at_us
        | Fault_plan.Transient_read _ | Fault_plan.Torn_write _ -> ()
      else
        (* A degraded link whose heal was wiped by a crash's [Sim.clear]:
           re-schedule the heal leg so the link never sticks degraded. *)
        match ev with
        | Fault_plan.Partition_link { heal_us; _ } when not t.healed.(i) ->
            schedule_heal t i heal_us
        | _ -> ())
    t.events

let install ~plan ~sim ~trace ~log ?ckpt ?stable ?recorder ?on_executor_fail
    ?on_node_fail ?on_node_resume ?on_link_change () =
  let t =
    {
      plan;
      sim;
      trace;
      log;
      ckpt;
      stable;
      events = Array.of_list (Fault_plan.events plan);
      fired = Array.make (List.length (Fault_plan.events plan)) false;
      recorder;
      on_executor_fail;
      on_node_fail;
      on_node_resume;
      on_link_change;
      healed = Array.make (List.length (Fault_plan.events plan)) false;
    }
  in
  Disk.set_fault_hook (Duplex.primary log) (Some (hook_for t Fault_plan.Log_primary));
  Disk.set_fault_hook (Duplex.mirror log) (Some (hook_for t Fault_plan.Log_mirror));
  (match ckpt with
  | Some d -> Disk.set_fault_hook d (Some (hook_for t Fault_plan.Ckpt))
  | None -> ());
  arm t;
  t

let plan t = t.plan
