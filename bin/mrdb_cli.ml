(* mrdb — command-line driver for the MM-DBMS recovery reproduction.

   Subcommands:
     run       drive a workload, report logging/checkpoint statistics
     crashtest run a workload, crash, recover, verify integrity
     obs       drive a workload through a crash/recovery cycle and dump the
               observability snapshot (metrics, histograms, recovery
               timeline, flight recorder) as JSON or aligned tables
     model     print the Section-3 analytic model at chosen parameters
     replicate run one of the three headline warm-standby flows
               (catchup | failover | divergence) and report the promoted
               standby's commit-order prefix check

   Examples:
     dune exec bin/mrdb_cli.exe -- run --workload bank --txns 1000
     dune exec bin/mrdb_cli.exe -- crashtest --txns 500 --mode full-reload
     dune exec bin/mrdb_cli.exe -- obs --txns 500 --format json
     dune exec bin/mrdb_cli.exe -- model --record-bytes 24 --page-kb 8
     dune exec bin/mrdb_cli.exe -- replicate --scenario failover --seed 7 *)

open Cmdliner
module Trace = Mrdb_sim.Trace

let report_stats db =
  let tr = Mrdb_core.Db.trace db in
  Printf.printf "commits:                 %d\n" (Trace.count tr "commits");
  Printf.printf "aborts:                  %d\n" (Trace.count tr "aborts");
  Printf.printf "log records:             %d\n" (Trace.count tr "log_records");
  Printf.printf "checkpoints:             %d\n" (Trace.count tr "checkpoints");
  Printf.printf "  by update count:       %d\n" (Trace.count tr "ckpt_req_update_count");
  Printf.printf "  by age:                %d\n" (Trace.count tr "ckpt_req_age");
  Printf.printf "log pages written:       %d\n"
    (Mrdb_wal.Log_disk.pages_written (Mrdb_core.Db.log_disk db));
  Printf.printf "simulated time:          %.1f ms\n"
    (Mrdb_sim.Sim.now (Mrdb_core.Db.sim db) /. 1000.0)

type workload_kind = Bank | Update_heavy | Skewed

let workload_conv =
  let parse = function
    | "bank" -> Ok Bank
    | "update" -> Ok Update_heavy
    | "skewed" -> Ok Skewed
    | s -> Error (`Msg ("unknown workload: " ^ s))
  in
  let print ppf = function
    | Bank -> Format.pp_print_string ppf "bank"
    | Update_heavy -> Format.pp_print_string ppf "update"
    | Skewed -> Format.pp_print_string ppf "skewed"
  in
  Arg.conv (parse, print)

let run_workload_quiet db kind txns seed =
  let rng = Mrdb_util.Rng.of_int seed in
  match kind with
  | Bank ->
      let w = Mrdb_core.Workload.Bank.setup db ~accounts:500 () in
      for _ = 1 to txns do
        Mrdb_core.Workload.Bank.run_debit_credit w db ~rng
      done
  | Update_heavy ->
      let w = Mrdb_core.Workload.Update_heavy.setup db ~rows:500 () in
      for _ = 1 to txns do
        Mrdb_core.Workload.Update_heavy.run_one w db ~rng
      done
  | Skewed ->
      let w = Mrdb_core.Workload.Skewed.setup db ~rows:2000 ~theta:1.0 () in
      for _ = 1 to txns do
        Mrdb_core.Workload.Skewed.run_one w db ~rng
      done

let run_workload db kind txns seed =
  let rng = Mrdb_util.Rng.of_int seed in
  match kind with
  | Bank ->
      let w = Mrdb_core.Workload.Bank.setup db ~accounts:500 () in
      for _ = 1 to txns do
        Mrdb_core.Workload.Bank.run_debit_credit w db ~rng
      done;
      Printf.printf "bank account total:      %Ld (initial %Ld)\n"
        (Mrdb_core.Workload.Bank.audit w db)
        (Mrdb_core.Workload.Bank.expected_total w);
      Printf.printf "debit/credit invariant:  %s\n"
        (if Mrdb_core.Workload.Bank.consistent w db then "holds" else "VIOLATED")
  | Update_heavy ->
      let w = Mrdb_core.Workload.Update_heavy.setup db ~rows:500 () in
      for _ = 1 to txns do
        Mrdb_core.Workload.Update_heavy.run_one w db ~rng
      done
  | Skewed ->
      let w = Mrdb_core.Workload.Skewed.setup db ~rows:2000 ~theta:1.0 () in
      for _ = 1 to txns do
        Mrdb_core.Workload.Skewed.run_one w db ~rng
      done

let cmd_run workload txns seed =
  let db = Mrdb_core.Db.create ~config:Mrdb_core.Config.small () in
  run_workload db workload txns seed;
  Mrdb_core.Db.quiesce db;
  report_stats db

let mode_conv =
  let parse = function
    | "on-demand" -> Ok Mrdb_core.Config.On_demand
    | "predeclare" -> Ok Mrdb_core.Config.Predeclare
    | "full-reload" -> Ok Mrdb_core.Config.Full_reload
    | s -> Error (`Msg ("unknown recovery mode: " ^ s))
  in
  let print ppf = function
    | Mrdb_core.Config.On_demand -> Format.pp_print_string ppf "on-demand"
    | Mrdb_core.Config.Predeclare -> Format.pp_print_string ppf "predeclare"
    | Mrdb_core.Config.Full_reload -> Format.pp_print_string ppf "full-reload"
  in
  Arg.conv (parse, print)

let cmd_crashtest workload txns seed mode =
  let db = Mrdb_core.Db.create ~config:Mrdb_core.Config.small () in
  (match workload with
  | Bank ->
      let w = Mrdb_core.Workload.Bank.setup db ~accounts:500 () in
      let rng = Mrdb_util.Rng.of_int seed in
      for _ = 1 to txns do
        Mrdb_core.Workload.Bank.run_debit_credit w db ~rng
      done;
      let before = Mrdb_core.Workload.Bank.audit w db in
      Mrdb_core.Db.crash db;
      let t0 = Mrdb_sim.Sim.now (Mrdb_core.Db.sim db) in
      Mrdb_core.Db.recover ~mode db;
      let after_catalogs = Mrdb_sim.Sim.now (Mrdb_core.Db.sim db) in
      let after = Mrdb_core.Workload.Bank.audit w db in
      let after_first = Mrdb_sim.Sim.now (Mrdb_core.Db.sim db) in
      Mrdb_core.Db.recover_everything db;
      Printf.printf "crash+recovery (%s):\n"
        (Format.asprintf "%a" (Arg.conv_printer mode_conv) mode);
      Printf.printf "  catalogs restored in:      %8.2f ms\n"
        ((after_catalogs -. t0) /. 1000.0);
      Printf.printf "  first audit txn done in:   %8.2f ms\n"
        ((after_first -. t0) /. 1000.0);
      Printf.printf "  account total %Ld -> %Ld: %s\n" before after
        (if Int64.equal before after then "preserved" else "VIOLATED");
      Printf.printf "  debit/credit invariant:    %s\n"
        (if Mrdb_core.Workload.Bank.consistent w db then "holds" else "VIOLATED");
      if not (Int64.equal before after && Mrdb_core.Workload.Bank.consistent w db)
      then exit 1
  | Update_heavy | Skewed ->
      run_workload db workload txns seed;
      let count_before =
        Mrdb_core.Db.cardinality db
          ~rel:(match workload with Update_heavy -> "cells" | _ -> "skewed")
      in
      Mrdb_core.Db.crash db;
      Mrdb_core.Db.recover ~mode db;
      let rel = match workload with Update_heavy -> "cells" | _ -> "skewed" in
      let count_after = Mrdb_core.Db.cardinality db ~rel in
      Printf.printf "rows before/after crash: %d / %d (%s)\n" count_before count_after
        (if count_before = count_after then "OK" else "MISMATCH");
      if count_before <> count_after then exit 1);
  report_stats db

(* The obs subcommand's scenario exercises every instrumented path: a
   workload (txn latency, SLB appends, sorter drains, checkpoint triggers),
   a crash, a recovery (timeline phases, partition restores) and a full
   background sweep, then snapshots the observability surface. *)
let cmd_obs workload txns seed format =
  let db = Mrdb_core.Db.create ~config:Mrdb_core.Config.small () in
  run_workload_quiet db workload txns seed;
  Mrdb_core.Db.quiesce db;
  Mrdb_core.Db.crash db;
  Mrdb_core.Db.recover db;
  (match workload with
  | Bank ->
      (* One post-crash on-demand restore burst before the sweep. *)
      ignore (Mrdb_core.Db.cardinality db ~rel:"account")
  | Update_heavy -> ignore (Mrdb_core.Db.cardinality db ~rel:"cells")
  | Skewed -> ignore (Mrdb_core.Db.cardinality db ~rel:"skewed"));
  Mrdb_core.Db.recover_everything db;
  Mrdb_core.Db.quiesce db;
  let t = Mrdb_core.Db.obs db in
  match format with
  | `Json -> print_string (Mrdb_obs.Export.json ~t ());
      print_newline ()
  | `Text -> print_string (Mrdb_obs.Export.texttab ~t ())

let cmd_model record_bytes page_kb n_update =
  let module P = Mrdb_analysis.Params in
  let module LM = Mrdb_analysis.Log_model in
  let module CM = Mrdb_analysis.Ckpt_model in
  let p =
    P.with_sizes ~s_log_record:record_bytes ~s_log_page:(page_kb * 1024) ~n_update
      P.default
  in
  Printf.printf "analytic model at record=%dB page=%dKB N_update=%d:\n" record_bytes
    page_kb n_update;
  Printf.printf "  I_record_sort:      %8.1f instructions/record\n" (LM.i_record_sort p);
  Printf.printf "  I_page_write:       %8.1f instructions/page\n" (LM.i_page_write p);
  Printf.printf "  logging capacity:   %8.0f records/s (%.0f bytes/s)\n"
    (LM.records_logged_per_s p) (LM.bytes_logged_per_s p);
  Printf.printf "  debit/credit rate:  %8.0f txn/s (4 records each)\n"
    (LM.txn_rate p ~records_per_txn:4);
  Printf.printf "  checkpoint rate:    %8.2f /s best, %.2f /s worst\n"
    (CM.best_case p ~records_per_s:(LM.records_logged_per_s p))
    (CM.worst_case p ~records_per_s:(LM.records_logged_per_s p))

(* The replicate subcommand runs one headline warm-standby flow end to end
   and renders its Scenario.report; exit 1 if the scenario's folded-in
   acceptance criteria (commit-order prefix et al.) do not hold. *)
let scenario_conv =
  let parse = function
    | "catchup" -> Ok `Catchup
    | "failover" -> Ok `Failover
    | "divergence" -> Ok `Divergence
    | s -> Error (`Msg ("unknown scenario: " ^ s))
  in
  let print ppf = function
    | `Catchup -> Format.pp_print_string ppf "catchup"
    | `Failover -> Format.pp_print_string ppf "failover"
    | `Divergence -> Format.pp_print_string ppf "divergence"
  in
  Arg.conv (parse, print)

let cmd_replicate scenario seed =
  let module S = Mrdb_replica.Scenario in
  let name, r =
    match scenario with
    | `Catchup -> ("standby-down-then-catchup", S.catchup ~seed ())
    | `Failover -> ("primary-crash-then-failover", S.failover ~seed ())
    | `Divergence -> ("divergence-forced-re-seed", S.divergence ~seed ())
  in
  Printf.printf "%s (seed %d):\n" name r.S.seed;
  Printf.printf "  committed on old primary:  %d txns\n" r.S.committed;
  Printf.printf "  ship cuts:                 %d\n" r.S.cuts;
  Printf.printf "  durable floor at failover: %d txns (last acked cut)\n"
    r.S.durable_len;
  Printf.printf "  lag at failover:           %d records\n" r.S.lag_at_failover;
  Printf.printf "  divergences detected:      %d\n" r.S.divergences;
  Printf.printf "  full re-seeds forced:      %d\n" r.S.reseeds;
  Printf.printf "  failover phase:            %8.2f ms simulated\n"
    (r.S.promote_us /. 1000.0);
  Printf.printf "  commit-order prefix:       %d/%d %s\n" r.S.prefix_len
    r.S.committed
    (if r.S.prefix_ok then "(acceptance holds)" else "(VIOLATED)");
  if not r.S.prefix_ok then exit 1

let workload_arg =
  Arg.(value & opt workload_conv Bank & info [ "workload"; "w" ] ~doc:"bank | update | skewed")

let txns_arg = Arg.(value & opt int 500 & info [ "txns"; "n" ] ~doc:"transactions to run")
let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"RNG seed")

let mode_arg =
  Arg.(
    value
    & opt mode_conv Mrdb_core.Config.On_demand
    & info [ "mode"; "m" ] ~doc:"on-demand | predeclare | full-reload")

let run_cmd =
  Cmd.v (Cmd.info "run" ~doc:"drive a workload and report recovery-component statistics")
    Term.(const cmd_run $ workload_arg $ txns_arg $ seed_arg)

let crashtest_cmd =
  Cmd.v (Cmd.info "crashtest" ~doc:"run a workload, crash, recover, verify integrity")
    Term.(const cmd_crashtest $ workload_arg $ txns_arg $ seed_arg $ mode_arg)

let format_conv =
  let parse = function
    | "json" -> Ok `Json
    | "text" -> Ok `Text
    | s -> Error (`Msg ("unknown format: " ^ s))
  in
  let print ppf = function
    | `Json -> Format.pp_print_string ppf "json"
    | `Text -> Format.pp_print_string ppf "text"
  in
  Arg.conv (parse, print)

let obs_cmd =
  Cmd.v
    (Cmd.info "obs"
       ~doc:
         "drive a workload through a crash/recovery cycle and dump the \
          observability snapshot (mrdb-obs/3 JSON or aligned tables)")
    Term.(
      const cmd_obs $ workload_arg $ txns_arg $ seed_arg
      $ Arg.(
          value
          & opt format_conv `Text
          & info [ "format"; "f" ] ~doc:"json | text"))

let model_cmd =
  Cmd.v (Cmd.info "model" ~doc:"print the Section-3 analytic model")
    Term.(
      const cmd_model
      $ Arg.(value & opt int 24 & info [ "record-bytes" ] ~doc:"log record size")
      $ Arg.(value & opt int 8 & info [ "page-kb" ] ~doc:"log page size in KB")
      $ Arg.(value & opt int 1000 & info [ "n-update" ] ~doc:"checkpoint threshold"))

let replicate_cmd =
  Cmd.v
    (Cmd.info "replicate"
       ~doc:
         "run a headline warm-standby flow (catchup | failover | divergence) \
          and verify the promoted standby against the commit-order history")
    Term.(
      const cmd_replicate
      $ Arg.(
          value
          & opt scenario_conv `Failover
          & info [ "scenario"; "s" ] ~doc:"catchup | failover | divergence")
      $ seed_arg)

let () =
  exit
    (Cmd.eval
       (Cmd.group
          (Cmd.info "mrdb" ~version:"1.0.0"
             ~doc:"memory-resident DBMS with the Lehman–Carey recovery architecture")
          [ run_cmd; crashtest_cmd; obs_cmd; model_cmd; replicate_cmd ]))
