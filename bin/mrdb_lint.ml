(* mrdb_lint driver: lint one or more lib/ trees, print diagnostics with
   the violated rule and paper clause, exit non-zero on any non-baselined
   violation.  Wired to `dune build @lint` and the CI lint job.

     mrdb_lint [options] [LIB_DIR ...]
       --format text|json    output format (json = SARIF 2.1.0)
       --baseline FILE       suppress fingerprints listed in FILE
       --check-baseline      also fail when FILE has stale entries
       --explain R<n>        print a rule's rationale and exit
       -o FILE               write the report to FILE instead of stdout *)

let usage =
  "usage: mrdb_lint [--format text|json] [--baseline FILE] \
   [--check-baseline] [--explain R<n>] [-o FILE] [LIB_DIR ...]  (default: lib)"

let die msg =
  Printf.eprintf "mrdb_lint: %s\n%s\n" msg usage;
  exit 2

let explain rule =
  Printf.printf "%s [%s]\n  %s\n"
    (Mrdb_lint.Diag.rule_name rule)
    (Mrdb_lint.Diag.rule_title rule)
    (Mrdb_lint.Diag.paper_clause rule)

type opts = {
  mutable format : [ `Text | `Json ];
  mutable baseline : string option;
  mutable check_baseline : bool;
  mutable out : string option;
  mutable dirs : string list;
}

let parse_args argv =
  let o =
    { format = `Text; baseline = None; check_baseline = false; out = None;
      dirs = [] }
  in
  let rec go = function
    | [] -> o
    | ("-h" | "-help" | "--help") :: _ ->
        print_endline usage;
        exit 0
    | "--format" :: v :: rest ->
        (match v with
        | "text" -> o.format <- `Text
        | "json" -> o.format <- `Json
        | _ -> die (Printf.sprintf "unknown format %S" v));
        go rest
    | "--baseline" :: v :: rest ->
        o.baseline <- Some v;
        go rest
    | "--check-baseline" :: rest ->
        o.check_baseline <- true;
        go rest
    | "--explain" :: v :: rest -> (
        match Mrdb_lint.Diag.rule_of_name v with
        | Some rule ->
            explain rule;
            if rest <> [] then die "--explain takes no further arguments";
            exit 0
        | None -> die (Printf.sprintf "unknown rule %S" v))
    | "-o" :: v :: rest ->
        o.out <- Some v;
        go rest
    | ("--format" | "--baseline" | "--explain" | "-o") :: [] ->
        die "missing argument"
    | arg :: _ when String.length arg > 0 && arg.[0] = '-' ->
        die (Printf.sprintf "unknown option %S" arg)
    | dir :: rest ->
        o.dirs <- o.dirs @ [ dir ];
        go rest
  in
  go (List.tl (Array.to_list argv))

let write_report opts text =
  match opts.out with
  | None -> print_string text
  | Some path ->
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () -> output_string oc text)

let () =
  let opts = parse_args Sys.argv in
  let lib_dirs = if opts.dirs = [] then [ "lib" ] else opts.dirs in
  (match List.filter (fun d -> not (Sys.file_exists d)) lib_dirs with
  | [] -> ()
  | d :: _ -> die (Printf.sprintf "no such directory: %s" d));
  let diags =
    List.concat_map
      (fun lib_dir -> Mrdb_lint.Engine.lint ~lib_dir ())
      lib_dirs
  in
  let baseline =
    match opts.baseline with
    | Some path -> Mrdb_lint.Baseline.load path
    | None -> Mrdb_lint.Baseline.parse_lines []
  in
  let suppressed, fresh = Mrdb_lint.Baseline.partition baseline diags in
  let stale = Mrdb_lint.Baseline.stale baseline diags in
  (match opts.format with
  | `Text ->
      write_report opts
        (String.concat ""
           (List.map
              (fun d -> Mrdb_lint.Diag.to_string d ^ "\n")
              fresh))
  | `Json -> write_report opts (Mrdb_lint.Sarif.render fresh));
  (* The human summary goes to stderr so the report stream stays clean
     for redirection/artifact upload. *)
  if suppressed <> [] then
    Printf.eprintf "mrdb_lint: %d baselined violation%s suppressed\n"
      (List.length suppressed)
      (if List.length suppressed = 1 then "" else "s");
  List.iter
    (fun entry ->
      Printf.eprintf "mrdb_lint: stale baseline entry: %s\n" entry)
    stale;
  let stale_fails = opts.check_baseline && stale <> [] in
  match (fresh, stale_fails) with
  | [], false ->
      Printf.eprintf
        "mrdb_lint: %s clean (R1 wild-write, R2 layering, R3 partiality, \
         R4 sealed interfaces, R5 fault containment, R6 output discipline, \
         R7 SLB region ownership, R8 determinism, R9 ownership, R10 \
         structured raises, R11 allowlist hygiene)\n"
        (String.concat " " lib_dirs)
  | _ ->
      if fresh <> [] then
        Printf.eprintf "mrdb_lint: %d new violation%s\n" (List.length fresh)
          (if List.length fresh = 1 then "" else "s");
      if stale_fails then
        Printf.eprintf
          "mrdb_lint: baseline has %d stale entr%s; delete them\n"
          (List.length stale)
          (if List.length stale = 1 then "y" else "ies");
      exit 1
