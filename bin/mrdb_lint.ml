(* mrdb_lint driver: lint one or more lib/ trees, print file:line:col
   diagnostics with the violated rule and paper clause, exit non-zero on
   any violation.  Wired to `dune build @lint` and the CI lint job. *)

let usage = "usage: mrdb_lint [LIB_DIR ...]  (default: lib)"

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  (match args with
  | [ ("-h" | "-help" | "--help") ] ->
      print_endline usage;
      exit 0
  | _ -> ());
  let lib_dirs = if args = [] then [ "lib" ] else args in
  let missing = List.filter (fun d -> not (Sys.file_exists d)) lib_dirs in
  (match missing with
  | [] -> ()
  | d :: _ ->
      Printf.eprintf "mrdb_lint: no such directory: %s\n%s\n" d usage;
      exit 2);
  let diags = List.concat_map (fun lib_dir -> Mrdb_lint.Engine.lint ~lib_dir) lib_dirs in
  List.iter (fun d -> print_endline (Mrdb_lint.Diag.to_string d)) diags;
  match diags with
  | [] ->
      Printf.printf "mrdb_lint: %s clean (R1 wild-write, R2 layering, R3 partiality, R4 sealed interfaces, R5 fault containment, R6 output discipline, R7 SLB region ownership)\n"
        (String.concat " " lib_dirs)
  | _ ->
      Printf.printf "mrdb_lint: %d violation%s\n" (List.length diags)
        (if List.length diags = 1 then "" else "s");
      exit 1
