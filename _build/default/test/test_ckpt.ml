(* Tests for the checkpoint substrate: the pseudo-circular disk allocation
   map, the request communication buffer, and the image codec. *)

open Mrdb_storage
open Mrdb_ckpt

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

(* -- Disk_map ------------------------------------------------------------- *)

let test_map_alloc_advances_head () =
  let m = Disk_map.create ~capacity_pages:16 in
  let a = Option.get (Disk_map.allocate m ~pages:3) in
  let b = Option.get (Disk_map.allocate m ~pages:3) in
  check int_t "first run at 0" 0 a;
  check int_t "second after first" 3 b;
  check int_t "head advanced" 6 (Disk_map.head m);
  check int_t "used" 6 (Disk_map.used_pages m)

let test_map_never_overwrites_live () =
  let m = Disk_map.create ~capacity_pages:8 in
  let a = Option.get (Disk_map.allocate m ~pages:4) in
  let b = Option.get (Disk_map.allocate m ~pages:4) in
  check bool_t "disjoint" true (a <> b);
  (* Full now. *)
  check bool_t "refuses when full" true (Disk_map.allocate m ~pages:1 = None);
  Disk_map.release m ~page:a ~pages:4;
  check bool_t "reuses released" true (Disk_map.allocate m ~pages:4 = Some a)

let test_map_skips_pinned_images () =
  (* The pseudo-circular property: stationary (rarely-checkpointed) images
     are skipped over as the head wraps past them. *)
  let m = Disk_map.create ~capacity_pages:10 in
  let stationary = Option.get (Disk_map.allocate m ~pages:2) in
  let moving = Option.get (Disk_map.allocate m ~pages:2) in
  (* Churn the moving partition many times around the disk. *)
  let current = ref moving in
  for _ = 1 to 20 do
    let next = Option.get (Disk_map.allocate m ~pages:2) in
    Disk_map.release m ~page:!current ~pages:2;
    current := next;
    check bool_t "never lands on the stationary image" true
      (next >= stationary + 2 || next + 2 <= stationary)
  done;
  check bool_t "stationary pages still used" true
    (Disk_map.is_used m ~page:stationary && Disk_map.is_used m ~page:(stationary + 1))

let test_map_release_errors () =
  let m = Disk_map.create ~capacity_pages:8 in
  Alcotest.check_raises "release free page"
    (Invalid_argument "Disk_map.release: page 0 not allocated") (fun () ->
      Disk_map.release m ~page:0 ~pages:1)

let test_map_rebuild () =
  let m = Disk_map.create ~capacity_pages:16 in
  ignore (Disk_map.allocate m ~pages:5);
  Disk_map.rebuild m [ (2, 3); (10, 4) ];
  check int_t "used after rebuild" 7 (Disk_map.used_pages m);
  check bool_t "run 1" true (Disk_map.is_used m ~page:2 && Disk_map.is_used m ~page:4);
  check bool_t "gap free" false (Disk_map.is_used m ~page:5);
  check bool_t "run 2" true (Disk_map.is_used m ~page:13)

let test_map_run_does_not_wrap_physical_end () =
  let m = Disk_map.create ~capacity_pages:8 in
  ignore (Disk_map.allocate m ~pages:6);
  Disk_map.release m ~page:0 ~pages:6;
  (* Head is at 6; a 4-page run cannot span 6..1, must come from 0. *)
  let a = Option.get (Disk_map.allocate m ~pages:4) in
  check int_t "allocated from start" 0 a

let prop_map_model =
  QCheck.Test.make ~name:"disk map = interval-set model" ~count:150
    QCheck.(small_list (pair bool (int_range 1 4)))
    (fun ops ->
      let m = Disk_map.create ~capacity_pages:32 in
      let live = ref [] in
      List.for_all
        (fun (is_alloc, pages) ->
          if is_alloc then
            match Disk_map.allocate m ~pages with
            | None -> true
            | Some start ->
                (* No overlap with any live run. *)
                let overlaps =
                  List.exists
                    (fun (s, n) -> start < s + n && s < start + pages)
                    !live
                in
                live := (start, pages) :: !live;
                not overlaps
          else
            match !live with
            | [] -> true
            | (s, n) :: rest ->
                Disk_map.release m ~page:s ~pages:n;
                live := rest;
                true)
        ops
      && Disk_map.used_pages m = List.fold_left (fun a (_, n) -> a + n) 0 !live)

(* -- Ckpt_queue ------------------------------------------------------------ *)

let part i : Addr.partition = { Addr.segment = 1; partition = i }

let test_queue_lifecycle () =
  let q = Ckpt_queue.create () in
  check bool_t "request accepted" true (Ckpt_queue.request q (part 1) Ckpt_queue.Update_count);
  check bool_t "duplicate rejected" false (Ckpt_queue.request q (part 1) Ckpt_queue.Age);
  check int_t "pending" 1 (Ckpt_queue.pending q);
  let e = Option.get (Ckpt_queue.next_requested q) in
  check bool_t "entry partition" true (Addr.equal_partition e.Ckpt_queue.part (part 1));
  check bool_t "in progress" true (e.Ckpt_queue.status = Ckpt_queue.In_progress);
  check bool_t "no more requested" true (Ckpt_queue.next_requested q = None);
  Ckpt_queue.finish q (part 1);
  check int_t "drained" 0 (Ckpt_queue.pending q);
  (* After finish, a new request for the same partition is accepted. *)
  check bool_t "re-request ok" true (Ckpt_queue.request q (part 1) Ckpt_queue.Age)

let test_queue_fifo () =
  let q = Ckpt_queue.create () in
  ignore (Ckpt_queue.request q (part 1) Ckpt_queue.Update_count);
  ignore (Ckpt_queue.request q (part 2) Ckpt_queue.Age);
  let e1 = Option.get (Ckpt_queue.next_requested q) in
  check int_t "oldest first" 1 e1.Ckpt_queue.part.Addr.partition;
  let e2 = Option.get (Ckpt_queue.next_requested q) in
  check int_t "then next" 2 e2.Ckpt_queue.part.Addr.partition

let test_queue_defer () =
  let q = Ckpt_queue.create () in
  ignore (Ckpt_queue.request q (part 1) Ckpt_queue.Update_count);
  let _ = Option.get (Ckpt_queue.next_requested q) in
  Ckpt_queue.defer q (part 1);
  (* Back to requested: picked up again. *)
  let e = Option.get (Ckpt_queue.next_requested q) in
  check int_t "re-dispatched" 1 e.Ckpt_queue.part.Addr.partition

let test_queue_finish_requires_in_progress () =
  let q = Ckpt_queue.create () in
  ignore (Ckpt_queue.request q (part 1) Ckpt_queue.Update_count);
  Alcotest.check_raises "not in progress" Not_found (fun () ->
      Ckpt_queue.finish q (part 1))

let test_queue_cancel () =
  let q = Ckpt_queue.create () in
  ignore (Ckpt_queue.request q (part 1) Ckpt_queue.Update_count);
  Ckpt_queue.cancel q (part 1);
  check int_t "gone" 0 (Ckpt_queue.pending q)

let test_queue_capacity () =
  let q = Ckpt_queue.create ~capacity:2 () in
  check bool_t "1" true (Ckpt_queue.request q (part 1) Ckpt_queue.Age);
  check bool_t "2" true (Ckpt_queue.request q (part 2) Ckpt_queue.Age);
  check bool_t "3 refused" false (Ckpt_queue.request q (part 3) Ckpt_queue.Age)

(* -- Ckpt_image ------------------------------------------------------------- *)

let test_image_roundtrip () =
  let p = Partition.create ~size:1024 ~segment:3 ~partition:7 in
  ignore (Partition.insert p (Bytes.of_string "hello"));
  let image =
    Ckpt_image.encode ~page_bytes:512
      { Ckpt_image.part = { Addr.segment = 3; partition = 7 }; watermark = 42;
        snapshot = Partition.snapshot p }
  in
  check int_t "page multiple" 0 (Bytes.length image mod 512);
  match Ckpt_image.decode image with
  | Error e -> Alcotest.fail e
  | Ok d ->
      check int_t "watermark" 42 d.Ckpt_image.watermark;
      check int_t "segment" 3 d.Ckpt_image.part.Addr.segment;
      let p' = Partition.of_snapshot d.Ckpt_image.snapshot in
      check bool_t "snapshot intact" true (Partition.equal_contents p p')

let test_image_detects_corruption () =
  let p = Partition.create ~size:512 ~segment:0 ~partition:0 in
  let image =
    Ckpt_image.encode ~page_bytes:512
      { Ckpt_image.part = Partition.address p; watermark = 0;
        snapshot = Partition.snapshot p }
  in
  Bytes.set image 100 '\x99';
  check bool_t "crc mismatch" true
    (match Ckpt_image.decode image with Error _ -> true | Ok _ -> false)

let test_image_pages_needed () =
  check int_t "tiny fits one page" 1 (Ckpt_image.pages_needed ~page_bytes:512 ~snapshot_bytes:100);
  check int_t "boundary" 2 (Ckpt_image.pages_needed ~page_bytes:512 ~snapshot_bytes:512);
  check int_t "exact minus header" 1
    (Ckpt_image.pages_needed ~page_bytes:512 ~snapshot_bytes:(512 - 36))

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "mrdb_ckpt"
    [
      ( "disk_map",
        [
          Alcotest.test_case "alloc advances head" `Quick test_map_alloc_advances_head;
          Alcotest.test_case "never overwrites live" `Quick test_map_never_overwrites_live;
          Alcotest.test_case "skips pinned images" `Quick test_map_skips_pinned_images;
          Alcotest.test_case "release errors" `Quick test_map_release_errors;
          Alcotest.test_case "rebuild" `Quick test_map_rebuild;
          Alcotest.test_case "no physical wrap" `Quick test_map_run_does_not_wrap_physical_end;
        ]
        @ qsuite [ prop_map_model ] );
      ( "ckpt_queue",
        [
          Alcotest.test_case "lifecycle" `Quick test_queue_lifecycle;
          Alcotest.test_case "fifo" `Quick test_queue_fifo;
          Alcotest.test_case "defer" `Quick test_queue_defer;
          Alcotest.test_case "finish requires in-progress" `Quick
            test_queue_finish_requires_in_progress;
          Alcotest.test_case "cancel" `Quick test_queue_cancel;
          Alcotest.test_case "capacity" `Quick test_queue_capacity;
        ] );
      ( "ckpt_image",
        [
          Alcotest.test_case "roundtrip" `Quick test_image_roundtrip;
          Alcotest.test_case "detects corruption" `Quick test_image_detects_corruption;
          Alcotest.test_case "pages_needed" `Quick test_image_pages_needed;
        ] );
    ]
