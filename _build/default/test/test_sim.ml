(* Tests for the discrete-event simulation engine and the CPU cost model. *)

open Mrdb_sim

let check = Alcotest.check
let float_t = Alcotest.float 1e-9

let test_clock_starts_at_zero () =
  let sim = Sim.create () in
  check float_t "t=0" 0.0 (Sim.now sim)

let test_events_run_in_time_order () =
  let sim = Sim.create () in
  let order = ref [] in
  Sim.schedule_at sim 30.0 (fun () -> order := 3 :: !order);
  Sim.schedule_at sim 10.0 (fun () -> order := 1 :: !order);
  Sim.schedule_at sim 20.0 (fun () -> order := 2 :: !order);
  Sim.run sim;
  check (Alcotest.list Alcotest.int) "order" [ 1; 2; 3 ] (List.rev !order);
  check float_t "final clock" 30.0 (Sim.now sim)

let test_ties_run_in_schedule_order () =
  let sim = Sim.create () in
  let order = ref [] in
  List.iter
    (fun i -> Sim.schedule_at sim 5.0 (fun () -> order := i :: !order))
    [ 1; 2; 3 ];
  Sim.run sim;
  check (Alcotest.list Alcotest.int) "fifo ties" [ 1; 2; 3 ] (List.rev !order)

let test_past_times_clamped () =
  let sim = Sim.create () in
  Sim.schedule_at sim 10.0 (fun () ->
      Sim.schedule_at sim 1.0 (fun () -> ()));
  Sim.run sim;
  check float_t "clock never rewinds" 10.0 (Sim.now sim)

let test_negative_delay_rejected () =
  let sim = Sim.create () in
  Alcotest.check_raises "negative delay"
    (Invalid_argument "Sim.schedule: negative delay") (fun () ->
      Sim.schedule sim ~delay:(-1.0) (fun () -> ()))

let test_run_until_horizon () =
  let sim = Sim.create () in
  let fired = ref [] in
  List.iter
    (fun t -> Sim.schedule_at sim t (fun () -> fired := t :: !fired))
    [ 5.0; 15.0; 25.0 ];
  Sim.run_until sim 20.0;
  check (Alcotest.list float_t) "only <= horizon" [ 5.0; 15.0 ] (List.rev !fired);
  check float_t "clock at horizon" 20.0 (Sim.now sim);
  check Alcotest.int "one pending" 1 (Sim.pending sim)

let test_cascading_events () =
  let sim = Sim.create () in
  let count = ref 0 in
  let rec chain n =
    if n > 0 then
      Sim.schedule sim ~delay:1.0 (fun () ->
          incr count;
          chain (n - 1))
  in
  chain 10;
  Sim.run sim;
  check Alcotest.int "all fired" 10 !count;
  check float_t "clock advanced" 10.0 (Sim.now sim)

let test_run_while () =
  let sim = Sim.create () in
  let count = ref 0 in
  for _ = 1 to 5 do
    Sim.schedule sim ~delay:1.0 (fun () -> incr count)
  done;
  Sim.run_while sim (fun () -> !count < 3);
  check Alcotest.int "stopped at 3" 3 !count

let test_cond_rendezvous () =
  let sim = Sim.create () in
  let c = Sim.Cond.create sim in
  let woken = ref 0 in
  Sim.Cond.wait c (fun () -> incr woken);
  Sim.Cond.wait c (fun () -> incr woken);
  check Alcotest.int "two waiters" 2 (Sim.Cond.waiters c);
  Sim.schedule_at sim 5.0 (fun () -> Sim.Cond.signal_all c);
  Sim.run sim;
  check Alcotest.int "both woken" 2 !woken;
  check Alcotest.int "no waiters left" 0 (Sim.Cond.waiters c)

(* -- Cpu -------------------------------------------------------------------- *)

let test_cpu_timing () =
  let sim = Sim.create () in
  let cpu = Cpu.create sim ~mips:1.0 in
  (* 1 MIPS: 1000 instructions = 1000 µs. *)
  let finished_at = ref 0.0 in
  Cpu.execute cpu ~instructions:1000 (fun () -> finished_at := Sim.now sim);
  Sim.run sim;
  check float_t "1000 instr at 1 MIPS" 1000.0 !finished_at

let test_cpu_serializes_work () =
  let sim = Sim.create () in
  let cpu = Cpu.create sim ~mips:1.0 in
  let t1 = ref 0.0 and t2 = ref 0.0 in
  Cpu.execute cpu ~instructions:100 (fun () -> t1 := Sim.now sim);
  Cpu.execute cpu ~instructions:100 (fun () -> t2 := Sim.now sim);
  Sim.run sim;
  check float_t "first batch" 100.0 !t1;
  check float_t "second batch queues behind" 200.0 !t2

let test_cpu_mips_scales () =
  let sim = Sim.create () in
  let fast = Cpu.create sim ~mips:6.0 in
  let t = ref 0.0 in
  Cpu.execute fast ~instructions:600 (fun () -> t := Sim.now sim);
  Sim.run sim;
  check float_t "600 instr at 6 MIPS = 100us" 100.0 !t

let test_cpu_execute_after () =
  let sim = Sim.create () in
  let cpu = Cpu.create sim ~mips:1.0 in
  let t = ref 0.0 in
  Cpu.execute_after cpu ~delay:500.0 ~instructions:100 (fun () -> t := Sim.now sim);
  Sim.run sim;
  check float_t "eligible at 500, done at 600" 600.0 !t

let test_cpu_utilization () =
  let sim = Sim.create () in
  let cpu = Cpu.create sim ~mips:1.0 in
  Cpu.execute cpu ~instructions:100 (fun () -> ());
  Sim.run sim;
  Sim.run_until sim 200.0;
  check float_t "busy half the time" 0.5 (Cpu.utilization cpu);
  check Alcotest.int "instruction accounting" 100 (Cpu.total_instructions cpu)

let test_cpu_seconds_for () =
  let sim = Sim.create () in
  let cpu = Cpu.create sim ~mips:2.0 in
  check float_t "1M instr at 2 MIPS = 0.5s" 0.5 (Cpu.seconds_for cpu 1_000_000)

let test_cpu_rejects_bad_args () =
  let sim = Sim.create () in
  Alcotest.check_raises "zero mips"
    (Invalid_argument "Cpu.create: mips must be positive") (fun () ->
      ignore (Cpu.create sim ~mips:0.0));
  let cpu = Cpu.create sim ~mips:1.0 in
  Alcotest.check_raises "negative instructions"
    (Invalid_argument "Cpu.execute: negative instructions") (fun () ->
      Cpu.execute cpu ~instructions:(-1) (fun () -> ()))

(* -- Trace ------------------------------------------------------------------ *)

let test_trace_counters () =
  let tr = Trace.create () in
  Trace.incr tr "a";
  Trace.incr tr "a";
  Trace.add tr "b" 10;
  check Alcotest.int "a" 2 (Trace.count tr "a");
  check Alcotest.int "b" 10 (Trace.count tr "b");
  check Alcotest.int "missing" 0 (Trace.count tr "zzz");
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int))
    "sorted counters"
    [ ("a", 2); ("b", 10) ]
    (Trace.counters tr)

let test_trace_series () =
  let tr = Trace.create () in
  Trace.record tr "lat" 1.0;
  Trace.record tr "lat" 3.0;
  check float_t "mean" 2.0 (Mrdb_util.Stats.mean (Trace.stats tr "lat"))

let test_trace_reset () =
  let tr = Trace.create () in
  Trace.incr tr "a";
  Trace.reset tr;
  check Alcotest.int "cleared" 0 (Trace.count tr "a")

let () =
  Alcotest.run "mrdb_sim"
    [
      ( "sim",
        [
          Alcotest.test_case "clock starts at zero" `Quick test_clock_starts_at_zero;
          Alcotest.test_case "time order" `Quick test_events_run_in_time_order;
          Alcotest.test_case "FIFO ties" `Quick test_ties_run_in_schedule_order;
          Alcotest.test_case "past times clamped" `Quick test_past_times_clamped;
          Alcotest.test_case "negative delay rejected" `Quick test_negative_delay_rejected;
          Alcotest.test_case "run_until" `Quick test_run_until_horizon;
          Alcotest.test_case "cascading events" `Quick test_cascading_events;
          Alcotest.test_case "run_while" `Quick test_run_while;
          Alcotest.test_case "cond rendezvous" `Quick test_cond_rendezvous;
        ] );
      ( "cpu",
        [
          Alcotest.test_case "timing" `Quick test_cpu_timing;
          Alcotest.test_case "serializes work" `Quick test_cpu_serializes_work;
          Alcotest.test_case "mips scaling" `Quick test_cpu_mips_scales;
          Alcotest.test_case "execute_after" `Quick test_cpu_execute_after;
          Alcotest.test_case "utilization" `Quick test_cpu_utilization;
          Alcotest.test_case "seconds_for" `Quick test_cpu_seconds_for;
          Alcotest.test_case "rejects bad args" `Quick test_cpu_rejects_bad_args;
        ] );
      ( "trace",
        [
          Alcotest.test_case "counters" `Quick test_trace_counters;
          Alcotest.test_case "series" `Quick test_trace_series;
          Alcotest.test_case "reset" `Quick test_trace_reset;
        ] );
    ]
