test/test_recovery.ml: Addr Alcotest List Mrdb_analysis Mrdb_hw Mrdb_recovery Mrdb_storage Mrdb_wal
