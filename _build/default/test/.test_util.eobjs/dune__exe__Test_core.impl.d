test/test_core.ml: Addr Alcotest Catalog Config Db Hashtbl List Mrdb_core Mrdb_sim Mrdb_storage Mrdb_util Mrdb_wal Printf QCheck QCheck_alcotest Schema Tuple
