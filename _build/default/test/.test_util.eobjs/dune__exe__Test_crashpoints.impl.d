test/test_crashpoints.ml: Alcotest Catalog Config Db Hashtbl List Mrdb_core Mrdb_storage Printf Schema Tuple
