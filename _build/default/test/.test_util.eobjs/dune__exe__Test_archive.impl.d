test/test_archive.ml: Addr Alcotest Bytes Config Db List Mrdb_archive Mrdb_ckpt Mrdb_core Mrdb_sim Mrdb_storage Option Partition Schema Tuple
