test/test_workload.ml: Alcotest Config Db Mrdb_core Mrdb_sim Mrdb_util Workload
