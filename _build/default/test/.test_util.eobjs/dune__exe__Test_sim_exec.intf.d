test/test_sim_exec.mli:
