test/test_ckpt.ml: Addr Alcotest Bytes Ckpt_image Ckpt_queue Disk_map List Mrdb_ckpt Mrdb_storage Option Partition QCheck QCheck_alcotest
