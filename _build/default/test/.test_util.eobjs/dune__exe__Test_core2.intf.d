test/test_core2.mli:
