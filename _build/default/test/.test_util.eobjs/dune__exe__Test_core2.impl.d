test/test_core2.ml: Addr Alcotest Catalog Config Db Int64 List Mrdb_core Mrdb_sim Mrdb_storage Mrdb_util Mrdb_wal Schema String Tuple Workload
