test/test_txn.ml: Addr Alcotest Bytes Format Gen List Lock_mgr Mrdb_hw Mrdb_storage Mrdb_txn Part_op Printf QCheck QCheck_alcotest Relation Schema Segment Tuple Txn Undo_space
