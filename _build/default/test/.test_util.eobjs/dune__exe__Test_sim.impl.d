test/test_sim.ml: Alcotest Cpu List Mrdb_sim Mrdb_util Sim Trace
