test/test_index.ml: Addr Alcotest Fun Gen Hashtbl Linear_hash List Mrdb_index Mrdb_storage Part_op Partition QCheck QCheck_alcotest Relation Schema Segment T_tree
