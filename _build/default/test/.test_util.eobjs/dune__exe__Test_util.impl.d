test/test_util.ml: Alcotest Array Bitset Bytes Checksum Codec Float Fun Gen Hashtbl List Mrdb_util Pqueue QCheck QCheck_alcotest Queue Ring Rng Stats String Texttab
