test/test_sim_exec.ml: Addr Alcotest Array Config Db List Mrdb_core Mrdb_storage Mrdb_util Schema Sim_exec Tuple
