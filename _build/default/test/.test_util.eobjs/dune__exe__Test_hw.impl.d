test/test_hw.ml: Alcotest Bytes Char Disk Duplex Float List Mrdb_hw Mrdb_sim Option Printf Stable_mem Volatile
