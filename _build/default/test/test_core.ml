(* Integration tests for the full MM-DBMS: transactions over indexed
   relations, checkpointing, crash at adversarial points, and recovery
   equivalence (recovered database == committed history). *)

open Mrdb_storage
open Mrdb_core

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

let account_schema =
  Schema.of_list [ ("id", Schema.Int); ("owner", Schema.Str); ("balance", Schema.Int) ]

let mk_db ?(config = Config.small) () = Db.create ~config ()

let mk_bank ?config ?(indexed = true) () =
  let db = mk_db ?config () in
  Db.create_relation db ~name:"accounts" ~schema:account_schema;
  if indexed then
    Db.create_index db ~rel:"accounts" ~name:"accounts_id" ~kind:Catalog.Ttree
      ~key_column:"id";
  db

let account i = [| Schema.int i; Schema.S (Printf.sprintf "owner%d" i); Schema.int (i * 100) |]

let insert_accounts db n =
  Db.with_txn db (fun tx ->
      for i = 1 to n do
        ignore (Db.insert db tx ~rel:"accounts" (account i))
      done)

let balances db =
  Db.with_txn db (fun tx ->
      Db.scan db tx ~rel:"accounts"
      |> List.map (fun (_, tup) ->
             (Schema.to_int (Tuple.field tup 0), Schema.to_int (Tuple.field tup 2)))
      |> List.sort compare)

(* -- basic operation ---------------------------------------------------------- *)

let test_create_and_insert () =
  let db = mk_bank () in
  insert_accounts db 20;
  check int_t "cardinality" 20 (Db.cardinality db ~rel:"accounts");
  check (Alcotest.list Alcotest.string) "relations" [ "accounts" ] (Db.relations db)

let test_lookup_via_index () =
  let db = mk_bank () in
  insert_accounts db 50;
  Db.with_txn db (fun tx ->
      match Db.lookup db tx ~rel:"accounts" ~index:"accounts_id" (Schema.int 7) with
      | [ (_, tup) ] ->
          check Alcotest.string "owner" "owner7"
            (Schema.to_string_value (Tuple.field tup 1))
      | l -> Alcotest.failf "expected 1 hit, got %d" (List.length l))

let only_hit db tx key =
  match Db.lookup db tx ~rel:"accounts" ~index:"accounts_id" (Schema.int key) with
  | [ (addr, tup) ] -> (addr, tup)
  | l -> Alcotest.failf "expected exactly 1 hit for %d, got %d" key (List.length l)

let test_update_and_delete () =
  let db = mk_bank () in
  insert_accounts db 10;
  Db.with_txn db (fun tx ->
      let addr, _ = only_hit db tx 3 in
      ignore (Db.update_field db tx ~rel:"accounts" addr ~column:"balance" (Schema.int 42));
      let addr9, _ = only_hit db tx 9 in
      Db.delete db tx ~rel:"accounts" addr9);
  check int_t "9 left" 9 (Db.cardinality db ~rel:"accounts");
  check bool_t "balance updated" true (List.mem_assoc 3 (balances db) && List.assoc 3 (balances db) = 42);
  Db.with_txn db (fun tx ->
      check int_t "deleted key gone" 0
        (List.length (Db.lookup db tx ~rel:"accounts" ~index:"accounts_id" (Schema.int 9))))

let test_range_query () =
  let db = mk_bank () in
  insert_accounts db 30;
  Db.with_txn db (fun tx ->
      let r =
        Db.range db tx ~rel:"accounts" ~index:"accounts_id"
          ~lo:(Some (Schema.int 10)) ~hi:(Some (Schema.int 14))
      in
      check int_t "5 keys" 5 (List.length r))

let test_abort_rolls_back_everything () =
  let db = mk_bank () in
  insert_accounts db 10;
  let before = balances db in
  let tx = Db.begin_txn db in
  ignore (Db.insert db tx ~rel:"accounts" (account 999));
  let addr, _ = only_hit db tx 5 in
  ignore (Db.update_field db tx ~rel:"accounts" addr ~column:"balance" (Schema.int 1));
  Db.abort db tx;
  check bool_t "state restored" true (balances db = before);
  Db.with_txn db (fun tx ->
      check int_t "index entry for 999 rolled back" 0
        (List.length (Db.lookup db tx ~rel:"accounts" ~index:"accounts_id" (Schema.int 999))))

let test_with_txn_aborts_on_exception () =
  let db = mk_bank () in
  insert_accounts db 5;
  let before = balances db in
  (try
     Db.with_txn db (fun tx ->
         ignore (Db.insert db tx ~rel:"accounts" (account 100));
         failwith "boom")
   with Failure _ -> ());
  check bool_t "aborted" true (balances db = before)

let test_unknown_relation_and_index () =
  let db = mk_bank () in
  Alcotest.check_raises "unknown rel" (Db.Unknown_relation "nope") (fun () ->
      Db.with_txn db (fun tx -> ignore (Db.scan db tx ~rel:"nope")));
  Alcotest.check_raises "unknown index" (Db.Unknown_index "nope") (fun () ->
      Db.with_txn db (fun tx ->
          ignore (Db.lookup db tx ~rel:"accounts" ~index:"nope" (Schema.int 1))))

let test_linear_hash_index () =
  let db = mk_db () in
  Db.create_relation db ~name:"accounts" ~schema:account_schema;
  Db.create_index db ~rel:"accounts" ~name:"accounts_hash" ~kind:Catalog.Lhash
    ~key_column:"owner";
  insert_accounts db 40;
  Db.with_txn db (fun tx ->
      match Db.lookup db tx ~rel:"accounts" ~index:"accounts_hash" (Schema.S "owner13") with
      | [ (_, tup) ] -> check int_t "id" 13 (Schema.to_int (Tuple.field tup 0))
      | l -> Alcotest.failf "expected 1, got %d" (List.length l))

let test_index_backfill () =
  let db = mk_db () in
  Db.create_relation db ~name:"accounts" ~schema:account_schema;
  insert_accounts db 25;
  (* Index created after data exists. *)
  Db.create_index db ~rel:"accounts" ~name:"accounts_id" ~kind:Catalog.Ttree
    ~key_column:"id";
  Db.with_txn db (fun tx ->
      check int_t "backfilled" 1
        (List.length (Db.lookup db tx ~rel:"accounts" ~index:"accounts_id" (Schema.int 20))))

(* -- checkpointing -------------------------------------------------------------- *)

let test_update_count_triggers_checkpoint () =
  (* n_update = 16 in Config.small; enough inserts must fire a request and
     auto-processing must complete it. *)
  let db = mk_bank ~indexed:false () in
  insert_accounts db 64;
  Db.quiesce db;
  check bool_t "checkpoints ran" true (Mrdb_sim.Trace.count (Db.trace db) "checkpoints" > 0)

let test_checkpoint_all () =
  let db = mk_bank () in
  insert_accounts db 10;
  Db.checkpoint_all db;
  Db.quiesce db;
  (* Every data partition flushed and reset; the catalog partitions stay
     active because checkpointing logs its own catalog updates. *)
  let data_parts = Db.relation_partitions db ~rel:"accounts" in
  let still_active = Mrdb_wal.Slt.active_partitions (Db.slt db) in
  check int_t "no active data partitions" 0
    (List.length
       (List.filter
          (fun p -> List.exists (Addr.equal_partition p) data_parts)
          still_active))

let test_checkpoint_deferred_under_lock () =
  let db = mk_bank ~indexed:false () in
  insert_accounts db 4;
  let tx = Db.begin_txn db in
  ignore (Db.insert db tx ~rel:"accounts" (account 50));
  (* The open transaction holds IX on the relation: a forced checkpoint of
     its partition must defer. *)
  let part = List.hd (Db.relation_partitions db ~rel:"accounts") in
  Alcotest.check_raises "deferred" (Db.Aborted "checkpoint deferred: relation locked")
    (fun () -> Db.checkpoint_partition db part);
  Db.commit db tx;
  (* Now it can run. *)
  Db.checkpoint_partition db part

(* -- crash and recovery ---------------------------------------------------------- *)

let test_crash_requires_recovery () =
  let db = mk_bank () in
  insert_accounts db 5;
  Db.crash db;
  check bool_t "crashed" true (Db.is_crashed db);
  Alcotest.check_raises "ops fail" Db.Crashed (fun () -> ignore (Db.begin_txn db));
  Db.recover db;
  check bool_t "recovered" false (Db.is_crashed db)

let test_recovery_restores_committed_data () =
  let db = mk_bank () in
  insert_accounts db 30;
  let before = balances db in
  Db.crash db;
  Db.recover db;
  check bool_t "all committed data back" true (balances db = before);
  Db.with_txn db (fun tx ->
      check int_t "index works after recovery" 1
        (List.length (Db.lookup db tx ~rel:"accounts" ~index:"accounts_id" (Schema.int 17))))

let test_recovery_drops_uncommitted () =
  let db = mk_bank () in
  insert_accounts db 10;
  let before = balances db in
  (* Open transaction with changes, never committed. *)
  let tx = Db.begin_txn db in
  ignore (Db.insert db tx ~rel:"accounts" (account 777));
  Db.crash db;
  Db.recover db;
  check bool_t "uncommitted insert gone" true (balances db = before)

let test_recovery_after_checkpoints_and_more_commits () =
  let db = mk_bank ~indexed:false () in
  insert_accounts db 20;
  Db.checkpoint_all db;
  (* Post-checkpoint committed work must replay on top of the images. *)
  Db.with_txn db (fun tx ->
      for i = 21 to 35 do
        ignore (Db.insert db tx ~rel:"accounts" (account i))
      done);
  let before = balances db in
  Db.crash db;
  Db.recover db;
  check bool_t "image + log replay equivalence" true (balances db = before)

let test_recovery_idempotent_replay_after_ckpt_crash () =
  (* Crash immediately after a checkpoint completes: the watermark filter
     must prevent double-applying pre-checkpoint records. *)
  let db = mk_bank ~indexed:false () in
  insert_accounts db 12;
  let part = List.hd (Db.relation_partitions db ~rel:"accounts") in
  Db.checkpoint_partition db part;
  let before = balances db in
  Db.crash db;
  Db.recover db;
  check bool_t "no double replay" true (balances db = before)

let test_repeated_crashes () =
  let db = mk_bank () in
  insert_accounts db 10;
  for round = 1 to 4 do
    Db.crash db;
    Db.recover db;
    Db.with_txn db (fun tx ->
        ignore (Db.insert db tx ~rel:"accounts" (account (100 + round))))
  done;
  check int_t "10 + 4 rounds" 14 (Db.cardinality db ~rel:"accounts")

let test_full_reload_mode () =
  let db = mk_bank () in
  insert_accounts db 20;
  let before = balances db in
  Db.crash db;
  Db.recover ~mode:Config.Full_reload db;
  check (Alcotest.float 0.001) "fully resident" 1.0 (Db.resident_fraction db);
  check bool_t "data equal" true (balances db = before)

let test_on_demand_partial_residency () =
  let db = mk_bank ~indexed:false () in
  (* Two relations; touch only one after the crash. *)
  Db.create_relation db ~name:"other" ~schema:account_schema;
  Db.with_txn db (fun tx ->
      for i = 1 to 15 do
        ignore (Db.insert db tx ~rel:"other" (account i))
      done);
  insert_accounts db 15;
  Db.crash db;
  Db.recover db;
  check bool_t "not fully resident after catalog restore" true
    (Db.resident_fraction db < 1.0);
  ignore (Db.cardinality db ~rel:"accounts");
  let frac_after_touch = Db.resident_fraction db in
  check bool_t "accounts resident, other not" true (frac_after_touch < 1.0);
  Db.recover_everything db;
  check (Alcotest.float 0.001) "background completes" 1.0 (Db.resident_fraction db);
  check int_t "other intact" 15 (Db.cardinality db ~rel:"other")

let test_background_recovery_steps () =
  let db = mk_bank () in
  insert_accounts db 30;
  Db.crash db;
  Db.recover db;
  let steps = ref 0 in
  while Db.background_recovery_step db do
    incr steps
  done;
  check bool_t "took steps" true (!steps > 0);
  check (Alcotest.float 0.001) "done" 1.0 (Db.resident_fraction db)

let test_predeclare_mode () =
  let db = mk_bank () in
  insert_accounts db 10;
  let before = balances db in
  Db.crash db;
  Db.recover ~mode:Config.Predeclare db;
  let tx = Db.begin_txn ~declare:[ "accounts" ] db in
  let hits = Db.lookup db tx ~rel:"accounts" ~index:"accounts_id" (Schema.int 4) in
  Db.commit db tx;
  check int_t "declared relation usable" 1 (List.length hits);
  check bool_t "equal" true (balances db = before)

let test_ddl_survives_crash () =
  let db = mk_bank () in
  insert_accounts db 5;
  Db.crash db;
  Db.recover db;
  (* Relation + index definitions recovered from catalogs; new DDL works. *)
  check (Alcotest.list Alcotest.string) "relations survive" [ "accounts" ] (Db.relations db);
  Db.create_relation db ~name:"fresh" ~schema:account_schema;
  Db.with_txn db (fun tx -> ignore (Db.insert db tx ~rel:"fresh" (account 1)));
  check int_t "new relation works" 1 (Db.cardinality db ~rel:"fresh")

let test_work_after_recovery_then_crash_again () =
  let db = mk_bank ~indexed:false () in
  insert_accounts db 10;
  Db.crash db;
  Db.recover db;
  Db.with_txn db (fun tx ->
      for i = 11 to 20 do
        ignore (Db.insert db tx ~rel:"accounts" (account i))
      done);
  let before = balances db in
  Db.crash db;
  Db.recover db;
  check bool_t "second-generation commits survive" true (balances db = before)

(* The torture test: a randomized committed/aborted history with interleaved
   checkpoints and a crash at a random point; the recovered database must
   equal the committed model exactly. *)
let prop_crash_recovery_equivalence =
  QCheck.Test.make ~name:"crash/recovery == committed history" ~count:25
    QCheck.(pair (int_bound 1000) (int_range 10 80))
    (fun (seed, n_txns) ->
      let rng = Mrdb_util.Rng.of_int seed in
      let db = mk_bank ~indexed:false () in
      (* model: id -> balance for committed state *)
      let model = Hashtbl.create 64 in
      let addr_of = Hashtbl.create 64 in
      let next_id = ref 0 in
      for _ = 1 to n_txns do
        let commit = Mrdb_util.Rng.int rng 100 < 80 in
        let tx = Db.begin_txn db in
        (* Transaction-local view, applied to (model, addr_of) on commit. *)
        let local_model = Hashtbl.copy model in
        let local_addr = Hashtbl.copy addr_of in
        let ops = 1 + Mrdb_util.Rng.int rng 5 in
        for _ = 1 to ops do
          match Mrdb_util.Rng.int rng 3 with
          | 0 ->
              incr next_id;
              let id = !next_id in
              let addr = Db.insert db tx ~rel:"accounts" (account id) in
              Hashtbl.replace local_model id (id * 100);
              Hashtbl.replace local_addr id addr
          | 1 -> (
              let ids = Hashtbl.fold (fun k _ acc -> k :: acc) local_model [] in
              match ids with
              | [] -> ()
              | _ ->
                  let id = List.nth ids (Mrdb_util.Rng.int rng (List.length ids)) in
                  let addr = Hashtbl.find local_addr id in
                  let v = Mrdb_util.Rng.int rng 10_000 in
                  let addr' =
                    Db.update_field db tx ~rel:"accounts" addr ~column:"balance"
                      (Schema.int v)
                  in
                  Hashtbl.replace local_model id v;
                  Hashtbl.replace local_addr id addr')
          | _ -> (
              let ids = Hashtbl.fold (fun k _ acc -> k :: acc) local_model [] in
              match ids with
              | [] -> ()
              | _ ->
                  let id = List.nth ids (Mrdb_util.Rng.int rng (List.length ids)) in
                  Db.delete db tx ~rel:"accounts" (Hashtbl.find local_addr id);
                  Hashtbl.remove local_model id;
                  Hashtbl.remove local_addr id)
        done;
        if commit then begin
          Db.commit db tx;
          Hashtbl.reset model;
          Hashtbl.reset addr_of;
          Hashtbl.iter (Hashtbl.replace model) local_model;
          Hashtbl.iter (Hashtbl.replace addr_of) local_addr
        end
        else Db.abort db tx;
        if Mrdb_util.Rng.int rng 10 = 0 then ignore (Db.process_checkpoints db)
      done;
      Db.crash db;
      Db.recover db;
      let recovered = balances db in
      let expected =
        Hashtbl.fold (fun id bal acc -> (id, bal) :: acc) model [] |> List.sort compare
      in
      recovered = expected)

(* Same torture shape, but over an indexed relation: after recovery the
   index must agree with the data for every committed key. *)
let prop_crash_recovery_equivalence_indexed =
  QCheck.Test.make ~name:"crash/recovery with index == committed history" ~count:12
    QCheck.(pair (int_bound 1000) (int_range 10 40))
    (fun (seed, n_txns) ->
      let rng = Mrdb_util.Rng.of_int seed in
      let db = mk_bank ~indexed:true () in
      let model = Hashtbl.create 64 in
      let addr_of = Hashtbl.create 64 in
      let next_id = ref 0 in
      for _ = 1 to n_txns do
        let commit = Mrdb_util.Rng.int rng 100 < 75 in
        let tx = Db.begin_txn db in
        let local_model = Hashtbl.copy model in
        let local_addr = Hashtbl.copy addr_of in
        let ops = 1 + Mrdb_util.Rng.int rng 4 in
        for _ = 1 to ops do
          match Mrdb_util.Rng.int rng 3 with
          | 0 ->
              incr next_id;
              let id = !next_id in
              let addr = Db.insert db tx ~rel:"accounts" (account id) in
              Hashtbl.replace local_model id (id * 100);
              Hashtbl.replace local_addr id addr
          | 1 -> (
              let ids = Hashtbl.fold (fun k _ acc -> k :: acc) local_model [] in
              match ids with
              | [] -> ()
              | _ ->
                  let id = List.nth ids (Mrdb_util.Rng.int rng (List.length ids)) in
                  let v = Mrdb_util.Rng.int rng 10_000 in
                  let addr' =
                    Db.update_field db tx ~rel:"accounts"
                      (Hashtbl.find local_addr id) ~column:"balance" (Schema.int v)
                  in
                  Hashtbl.replace local_model id v;
                  Hashtbl.replace local_addr id addr')
          | _ -> (
              let ids = Hashtbl.fold (fun k _ acc -> k :: acc) local_model [] in
              match ids with
              | [] -> ()
              | _ ->
                  let id = List.nth ids (Mrdb_util.Rng.int rng (List.length ids)) in
                  Db.delete db tx ~rel:"accounts" (Hashtbl.find local_addr id);
                  Hashtbl.remove local_model id;
                  Hashtbl.remove local_addr id)
        done;
        if commit then begin
          Db.commit db tx;
          Hashtbl.reset model;
          Hashtbl.reset addr_of;
          Hashtbl.iter (Hashtbl.replace model) local_model;
          Hashtbl.iter (Hashtbl.replace addr_of) local_addr
        end
        else Db.abort db tx;
        if Mrdb_util.Rng.int rng 8 = 0 then ignore (Db.process_checkpoints db)
      done;
      Db.crash db;
      Db.recover db;
      let expected =
        Hashtbl.fold (fun id bal acc -> (id, bal) :: acc) model [] |> List.sort compare
      in
      balances db = expected
      && Db.with_txn db (fun tx ->
             List.for_all
               (fun (id, bal) ->
                 match Db.lookup db tx ~rel:"accounts" ~index:"accounts_id" (Schema.int id) with
                 | [ (_, tup) ] -> Schema.to_int (Tuple.field tup 2) = bal
                 | _ -> false)
               expected
             && Db.lookup db tx ~rel:"accounts" ~index:"accounts_id"
                  (Schema.int (1_000_000))
                = []))

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "mrdb_core"
    [
      ( "basic",
        [
          Alcotest.test_case "create + insert" `Quick test_create_and_insert;
          Alcotest.test_case "index lookup" `Quick test_lookup_via_index;
          Alcotest.test_case "update + delete" `Quick test_update_and_delete;
          Alcotest.test_case "range query" `Quick test_range_query;
          Alcotest.test_case "abort rolls back" `Quick test_abort_rolls_back_everything;
          Alcotest.test_case "with_txn aborts on exception" `Quick test_with_txn_aborts_on_exception;
          Alcotest.test_case "unknown names" `Quick test_unknown_relation_and_index;
          Alcotest.test_case "linear hash index" `Quick test_linear_hash_index;
          Alcotest.test_case "index backfill" `Quick test_index_backfill;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "update-count trigger" `Quick test_update_count_triggers_checkpoint;
          Alcotest.test_case "checkpoint_all" `Quick test_checkpoint_all;
          Alcotest.test_case "deferred under lock" `Quick test_checkpoint_deferred_under_lock;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "crash requires recovery" `Quick test_crash_requires_recovery;
          Alcotest.test_case "restores committed data" `Quick test_recovery_restores_committed_data;
          Alcotest.test_case "drops uncommitted" `Quick test_recovery_drops_uncommitted;
          Alcotest.test_case "ckpt + later commits" `Quick test_recovery_after_checkpoints_and_more_commits;
          Alcotest.test_case "idempotent after ckpt crash" `Quick
            test_recovery_idempotent_replay_after_ckpt_crash;
          Alcotest.test_case "repeated crashes" `Quick test_repeated_crashes;
          Alcotest.test_case "full reload mode" `Quick test_full_reload_mode;
          Alcotest.test_case "on-demand partial residency" `Quick test_on_demand_partial_residency;
          Alcotest.test_case "background steps" `Quick test_background_recovery_steps;
          Alcotest.test_case "predeclare mode" `Quick test_predeclare_mode;
          Alcotest.test_case "DDL survives crash" `Quick test_ddl_survives_crash;
          Alcotest.test_case "recover, work, crash again" `Quick
            test_work_after_recovery_then_crash_again;
        ]
        @ qsuite
            [ prop_crash_recovery_equivalence; prop_crash_recovery_equivalence_indexed ]
      );
    ]
