(* Systematic crash-point testing: run a fixed scripted history and crash
   after EVERY transaction boundary (and mid-transaction), verifying that
   recovery always reproduces exactly the committed prefix.  This is the
   strongest functional statement about the recovery algorithm: no matter
   where the power fails, the database comes back to the last committed
   state. *)

open Mrdb_storage
open Mrdb_core

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

let schema = Schema.of_list [ ("k", Schema.Int); ("v", Schema.Int) ]

(* The script: a list of transactions; each is (commit?, ops).  Ops are
   pure functions of the running address table. *)
type op = Ins of int | Upd of int * int | Del of int

let script =
  [
    (true, [ Ins 1; Ins 2; Ins 3 ]);
    (true, [ Upd (1, 100); Ins 4 ]);
    (false, [ Upd (2, 999); Del 3 ]);          (* aborted *)
    (true, [ Del 2; Ins 5; Upd (4, 44) ]);
    (true, [ Ins 6; Ins 7; Ins 8; Ins 9 ]);
    (false, [ Del 1 ]);                        (* aborted *)
    (true, [ Upd (5, 55); Del 6 ]);
    (true, [ Ins 10; Upd (10, 1010) ]);
  ]

(* Expected committed state after the first [n] transactions. *)
let model_after n =
  let tbl = Hashtbl.create 16 in
  List.iteri
    (fun i (commit, ops) ->
      if i < n && commit then
        List.iter
          (function
            | Ins k -> Hashtbl.replace tbl k k
            | Upd (k, v) -> Hashtbl.replace tbl k v
            | Del k -> Hashtbl.remove tbl k)
          ops)
    script;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] |> List.sort compare

let run_prefix db ~addr_of ~txns ~ckpt_every =
  List.iteri
    (fun i (commit, ops) ->
      if i < txns then begin
        let tx = Db.begin_txn db in
        List.iter
          (fun op ->
            match op with
            | Ins k ->
                let a = Db.insert db tx ~rel:"t" [| Schema.int k; Schema.int k |] in
                Hashtbl.replace addr_of k a
            | Upd (k, v) ->
                let a = Hashtbl.find addr_of k in
                let a' = Db.update_field db tx ~rel:"t" a ~column:"v" (Schema.int v) in
                Hashtbl.replace addr_of k a'
            | Del k -> Db.delete db tx ~rel:"t" (Hashtbl.find addr_of k))
          ops;
        if commit then Db.commit db tx
        else begin
          Db.abort db tx;
          (* Restore the address table from the database (aborted ops may
             have moved addresses back). *)
          Hashtbl.reset addr_of;
          Db.with_txn db (fun tx ->
              List.iter
                (fun (a, tup) ->
                  Hashtbl.replace addr_of (Schema.to_int (Tuple.field tup 0)) a)
                (Db.scan db tx ~rel:"t"))
        end;
        if ckpt_every > 0 && (i + 1) mod ckpt_every = 0 then
          ignore (Db.process_checkpoints db)
      end)
    script

let observed db =
  Db.with_txn db (fun tx ->
      Db.scan db tx ~rel:"t"
      |> List.map (fun (_, tup) ->
             (Schema.to_int (Tuple.field tup 0), Schema.to_int (Tuple.field tup 1)))
      |> List.sort compare)

let crash_after_txn ~ckpt_every n () =
  let db = Db.create ~config:Config.small () in
  Db.create_relation db ~name:"t" ~schema;
  let addr_of = Hashtbl.create 16 in
  run_prefix db ~addr_of ~txns:n ~ckpt_every;
  Db.crash db;
  Db.recover db;
  check
    (Alcotest.list (Alcotest.pair int_t int_t))
    (Printf.sprintf "state after crash at txn %d" n)
    (model_after n) (observed db);
  (* The database remains usable: run the remaining script after recovery
     (addresses may have changed, so rebuild the table). *)
  Hashtbl.reset addr_of;
  Db.with_txn db (fun tx ->
      List.iter
        (fun (a, tup) ->
          Hashtbl.replace addr_of (Schema.to_int (Tuple.field tup 0)) a)
        (Db.scan db tx ~rel:"t"))

let crash_mid_txn n () =
  (* Crash with transaction n open and partially executed: its effects
     must vanish entirely. *)
  let db = Db.create ~config:Config.small () in
  Db.create_relation db ~name:"t" ~schema;
  let addr_of = Hashtbl.create 16 in
  run_prefix db ~addr_of ~txns:n ~ckpt_every:3;
  (match List.nth_opt script n with
  | Some (_, ops) ->
      let tx = Db.begin_txn db in
      (* Execute only the first op of the next transaction, then crash. *)
      (match ops with
      | Ins k :: _ -> ignore (Db.insert db tx ~rel:"t" [| Schema.int k; Schema.int k |])
      | Upd (k, v) :: _ ->
          ignore
            (Db.update_field db tx ~rel:"t" (Hashtbl.find addr_of k) ~column:"v"
               (Schema.int v))
      | Del k :: _ -> Db.delete db tx ~rel:"t" (Hashtbl.find addr_of k)
      | [] -> ())
  | None -> ());
  Db.crash db;
  Db.recover db;
  check
    (Alcotest.list (Alcotest.pair int_t int_t))
    (Printf.sprintf "open txn %d vanished" n)
    (model_after n) (observed db)

let crash_during_checkpoint () =
  (* Crash right after checkpoint transactions committed but with their
     post-commit work (bin flush/reset) possibly outstanding disk writes. *)
  let db = Db.create ~config:Config.small () in
  Db.create_relation db ~name:"t" ~schema;
  let addr_of = Hashtbl.create 16 in
  run_prefix db ~addr_of ~txns:5 ~ckpt_every:0;
  List.iter (fun part -> Db.checkpoint_partition db part)
    (Db.relation_partitions db ~rel:"t");
  (* Crash WITHOUT quiescing: checkpoint disk writes may be in flight. *)
  Db.crash db;
  Db.recover db;
  check
    (Alcotest.list (Alcotest.pair int_t int_t))
    "state after mid-checkpoint crash" (model_after 5) (observed db)

let indexed_variant () =
  (* Same script against an indexed relation: index recovery must agree
     with tuple recovery at every crash point. *)
  List.iter
    (fun n ->
      let db = Db.create ~config:Config.small () in
      Db.create_relation db ~name:"t" ~schema;
      Db.create_index db ~rel:"t" ~name:"t_k" ~kind:Catalog.Ttree ~key_column:"k";
      let addr_of = Hashtbl.create 16 in
      run_prefix db ~addr_of ~txns:n ~ckpt_every:2;
      Db.crash db;
      Db.recover db;
      check
        (Alcotest.list (Alcotest.pair int_t int_t))
        (Printf.sprintf "indexed state at %d" n)
        (model_after n) (observed db);
      (* Every committed key must be found through the index, and only
         those. *)
      Db.with_txn db (fun tx ->
          List.iter
            (fun (k, v) ->
              match Db.lookup db tx ~rel:"t" ~index:"t_k" (Schema.int k) with
              | [ (_, tup) ] ->
                  check int_t "index agrees" v (Schema.to_int (Tuple.field tup 1))
              | l -> Alcotest.failf "key %d: %d index hits" k (List.length l))
            (model_after n);
          check bool_t "no phantom entries" true
            (Db.lookup db tx ~rel:"t" ~index:"t_k" (Schema.int 999) = [])))
    [ 1; 3; 5; 8 ]

let crash_during_partial_on_demand_recovery () =
  (* Crash again while only part of the database has been demand-restored:
     the not-yet-restored partitions must still recover afterwards. *)
  let db = Db.create ~config:Config.small () in
  Db.create_relation db ~name:"t" ~schema;
  Db.create_relation db ~name:"u" ~schema;
  let addr_of = Hashtbl.create 16 in
  run_prefix db ~addr_of ~txns:6 ~ckpt_every:2;
  Db.with_txn db (fun tx ->
      for i = 100 to 140 do
        ignore (Db.insert db tx ~rel:"u" [| Schema.int i; Schema.int i |])
      done);
  Db.crash db;
  Db.recover db;
  (* Touch only "t"; "u" stays disk-resident. *)
  let t_state = observed db in
  check bool_t "partial residency" true (Db.resident_fraction db < 1.0);
  Db.crash db;
  Db.recover db;
  check (Alcotest.list (Alcotest.pair int_t int_t)) "t unchanged" t_state (observed db);
  let u_count =
    Db.with_txn db (fun tx -> List.length (Db.scan db tx ~rel:"u"))
  in
  check int_t "u recovers after double crash" 41 u_count

let double_crash_during_recovery_window () =
  (* Crash again immediately after recovery, before any new work: state
     must be unchanged (recovery itself must not damage durability). *)
  let db = Db.create ~config:Config.small () in
  Db.create_relation db ~name:"t" ~schema;
  let addr_of = Hashtbl.create 16 in
  run_prefix db ~addr_of ~txns:6 ~ckpt_every:2;
  Db.crash db;
  Db.recover db;
  Db.crash db;
  Db.recover db;
  Db.crash db;
  Db.recover db;
  check
    (Alcotest.list (Alcotest.pair int_t int_t))
    "triple crash" (model_after 6) (observed db)

let n_txns = List.length script

let () =
  let crash_cases ~ckpt_every label =
    List.init (n_txns + 1) (fun n ->
        Alcotest.test_case
          (Printf.sprintf "%s: crash after txn %d" label n)
          `Quick
          (crash_after_txn ~ckpt_every n))
  in
  Alcotest.run "mrdb_crashpoints"
    [
      ("no checkpoints", crash_cases ~ckpt_every:0 "plain");
      ("checkpoint every 2 txns", crash_cases ~ckpt_every:2 "ckpt2");
      ("checkpoint every txn", crash_cases ~ckpt_every:1 "ckpt1");
      ( "mid-transaction",
        List.init n_txns (fun n ->
            Alcotest.test_case
              (Printf.sprintf "crash inside txn %d" n)
              `Quick (crash_mid_txn n)) );
      ( "special",
        [
          Alcotest.test_case "crash during checkpoint I/O" `Quick crash_during_checkpoint;
          Alcotest.test_case "indexed relation at several points" `Quick indexed_variant;
          Alcotest.test_case "repeated crash during recovery window" `Quick
            double_crash_during_recovery_window;
          Alcotest.test_case "crash during partial on-demand recovery" `Quick
            crash_during_partial_on_demand_recovery;
        ] );
    ]
