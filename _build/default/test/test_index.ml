(* Tests for the index structures: T-tree and modified linear hashing,
   including model-based property tests and attach-after-recovery. *)

open Mrdb_storage
open Mrdb_index

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

let nolog = Relation.null_sink

let tuple_addr i = Addr.make ~segment:9 ~partition:(i / 100) ~slot:(i mod 100)

(* -- T-tree ----------------------------------------------------------------- *)

let mk_ttree ?(max_items = 4) () =
  let segment = Segment.create ~id:11 ~partition_bytes:8192 in
  T_tree.create ~segment ~log:nolog ~key_type:Schema.Int ~max_items ()

let test_ttree_empty () =
  let t = mk_ttree () in
  check int_t "empty" 0 (T_tree.cardinality t);
  check bool_t "lookup none" true (T_tree.lookup t (Schema.int 1) = []);
  check bool_t "min none" true (T_tree.min_entry t = None);
  T_tree.check_invariants t

let test_ttree_insert_lookup () =
  let t = mk_ttree () in
  for i = 1 to 100 do
    T_tree.insert t ~log:nolog (Schema.int i) (tuple_addr i)
  done;
  check int_t "cardinality" 100 (T_tree.cardinality t);
  for i = 1 to 100 do
    check bool_t "found" true (T_tree.lookup_one t (Schema.int i) = Some (tuple_addr i))
  done;
  check bool_t "absent" true (T_tree.lookup t (Schema.int 999) = []);
  T_tree.check_invariants t

let test_ttree_balanced_after_sequential_inserts () =
  let t = mk_ttree ~max_items:2 () in
  for i = 1 to 512 do
    T_tree.insert t ~log:nolog (Schema.int i) (tuple_addr i)
  done;
  T_tree.check_invariants t;
  (* 512 entries at 2/node = 256 nodes; AVL height <= 1.44 log2 256 + small. *)
  check bool_t "height logarithmic" true (T_tree.height t <= 13)

let test_ttree_duplicate_keys_different_addrs () =
  let t = mk_ttree () in
  T_tree.insert t ~log:nolog (Schema.int 5) (tuple_addr 1);
  T_tree.insert t ~log:nolog (Schema.int 5) (tuple_addr 2);
  T_tree.insert t ~log:nolog (Schema.int 5) (tuple_addr 3);
  check int_t "three entries" 3 (List.length (T_tree.lookup t (Schema.int 5)));
  check bool_t "delete one" true (T_tree.delete t ~log:nolog (Schema.int 5) (tuple_addr 2));
  check int_t "two remain" 2 (List.length (T_tree.lookup t (Schema.int 5)));
  T_tree.check_invariants t

let test_ttree_duplicate_entry_rejected () =
  let t = mk_ttree () in
  T_tree.insert t ~log:nolog (Schema.int 5) (tuple_addr 1);
  Alcotest.check_raises "duplicate" (Invalid_argument "T_tree: duplicate entry")
    (fun () -> T_tree.insert t ~log:nolog (Schema.int 5) (tuple_addr 1))

let test_ttree_delete () =
  let t = mk_ttree () in
  for i = 1 to 50 do
    T_tree.insert t ~log:nolog (Schema.int i) (tuple_addr i)
  done;
  for i = 1 to 50 do
    if i mod 2 = 0 then
      check bool_t "deleted" true (T_tree.delete t ~log:nolog (Schema.int i) (tuple_addr i))
  done;
  check int_t "half left" 25 (T_tree.cardinality t);
  check bool_t "absent delete is false" false
    (T_tree.delete t ~log:nolog (Schema.int 2) (tuple_addr 2));
  for i = 1 to 50 do
    let expected = if i mod 2 = 0 then None else Some (tuple_addr i) in
    check bool_t "membership" true (T_tree.lookup_one t (Schema.int i) = expected)
  done;
  T_tree.check_invariants t

let test_ttree_delete_all () =
  let t = mk_ttree ~max_items:3 () in
  let n = 200 in
  for i = 1 to n do
    T_tree.insert t ~log:nolog (Schema.int i) (tuple_addr i)
  done;
  for i = n downto 1 do
    check bool_t "deleted" true (T_tree.delete t ~log:nolog (Schema.int i) (tuple_addr i));
    if i mod 37 = 0 then T_tree.check_invariants t
  done;
  check int_t "empty" 0 (T_tree.cardinality t);
  check bool_t "no min" true (T_tree.min_entry t = None);
  T_tree.check_invariants t

let test_ttree_range () =
  let t = mk_ttree () in
  for i = 1 to 100 do
    T_tree.insert t ~log:nolog (Schema.int i) (tuple_addr i)
  done;
  let r = T_tree.range t ~lo:(Some (Schema.int 10)) ~hi:(Some (Schema.int 20)) in
  check int_t "11 keys" 11 (List.length r);
  check bool_t "sorted" true
    (List.sort (fun (a, _) (b, _) -> Schema.compare_value a b) r = r);
  check int_t "unbounded low" 20
    (List.length (T_tree.range t ~lo:None ~hi:(Some (Schema.int 20))));
  check int_t "unbounded high" 21
    (List.length (T_tree.range t ~lo:(Some (Schema.int 80)) ~hi:None));
  check int_t "full range" 100 (List.length (T_tree.range t ~lo:None ~hi:None))

let test_ttree_min_max () =
  let t = mk_ttree () in
  List.iter
    (fun i -> T_tree.insert t ~log:nolog (Schema.int i) (tuple_addr i))
    [ 42; 7; 99; 13 ];
  check bool_t "min" true
    (match T_tree.min_entry t with Some (k, _) -> Schema.to_int k = 7 | None -> false);
  check bool_t "max" true
    (match T_tree.max_entry t with Some (k, _) -> Schema.to_int k = 99 | None -> false)

let test_ttree_iter_in_order () =
  let t = mk_ttree ~max_items:3 () in
  let keys = [ 5; 3; 9; 1; 7; 8; 2; 6; 4 ] in
  List.iter (fun i -> T_tree.insert t ~log:nolog (Schema.int i) (tuple_addr i)) keys;
  let seen = ref [] in
  T_tree.iter (fun k _ -> seen := Schema.to_int k :: !seen) t;
  check (Alcotest.list int_t) "in order" [ 1; 2; 3; 4; 5; 6; 7; 8; 9 ] (List.rev !seen)

let test_ttree_attach_roundtrip () =
  let segment = Segment.create ~id:11 ~partition_bytes:8192 in
  let t = T_tree.create ~segment ~log:nolog ~key_type:Schema.Int ~max_items:4 () in
  for i = 1 to 100 do
    T_tree.insert t ~log:nolog (Schema.int i) (tuple_addr i)
  done;
  (* Simulate recovery: rebuild the segment from partition snapshots, then
     attach a fresh tree over it. *)
  let rebuilt = Segment.create ~id:11 ~partition_bytes:8192 in
  Segment.iter
    (fun p -> Segment.install rebuilt (Partition.of_snapshot (Partition.snapshot p)))
    segment;
  let t' = T_tree.attach ~segment:rebuilt in
  check int_t "cardinality survives" 100 (T_tree.cardinality t');
  check int_t "max_items survives" 4 (T_tree.max_items t');
  for i = 1 to 100 do
    check bool_t "entries survive" true
      (T_tree.lookup_one t' (Schema.int i) = Some (tuple_addr i))
  done;
  T_tree.check_invariants t'

let test_ttree_invalidate_cache () =
  let t = mk_ttree () in
  for i = 1 to 30 do
    T_tree.insert t ~log:nolog (Schema.int i) (tuple_addr i)
  done;
  T_tree.invalidate_cache t;
  check int_t "recount after invalidation" 30 (T_tree.cardinality t);
  for i = 1 to 30 do
    check bool_t "still found" true (T_tree.lookup_one t (Schema.int i) = Some (tuple_addr i))
  done;
  T_tree.check_invariants t

let test_ttree_string_keys () =
  let segment = Segment.create ~id:11 ~partition_bytes:8192 in
  let t = T_tree.create ~segment ~log:nolog ~key_type:Schema.Str ~max_items:4 () in
  List.iteri
    (fun i name -> T_tree.insert t ~log:nolog (Schema.S name) (tuple_addr i))
    [ "delta"; "alpha"; "charlie"; "bravo" ];
  let seen = ref [] in
  T_tree.iter (fun k _ -> seen := Schema.to_string_value k :: !seen) t;
  check (Alcotest.list Alcotest.string) "lexicographic"
    [ "alpha"; "bravo"; "charlie"; "delta" ]
    (List.rev !seen);
  Alcotest.check_raises "type mismatch" (Invalid_argument "T_tree.insert: key type mismatch")
    (fun () -> T_tree.insert t ~log:nolog (Schema.int 1) (tuple_addr 0))

(* Model-based: random interleavings of inserts and deletes agree with a
   sorted-association-list model. *)
let prop_ttree_model =
  QCheck.Test.make ~name:"t-tree = set model under random ops" ~count:60
    QCheck.(make Gen.(list_size (int_range 0 300) (pair bool (int_bound 60))))
    (fun ops ->
      let t = mk_ttree ~max_items:4 () in
      let model = Hashtbl.create 64 in
      List.iter
        (fun (is_insert, key) ->
          let a = tuple_addr key in
          if is_insert then begin
            if not (Hashtbl.mem model key) then begin
              T_tree.insert t ~log:nolog (Schema.int key) a;
              Hashtbl.replace model key ()
            end
          end
          else begin
            let deleted = T_tree.delete t ~log:nolog (Schema.int key) a in
            if deleted <> Hashtbl.mem model key then failwith "delete result mismatch";
            Hashtbl.remove model key
          end)
        ops;
      T_tree.check_invariants t;
      T_tree.cardinality t = Hashtbl.length model
      && List.for_all
           (fun k -> (T_tree.lookup_one t (Schema.int k) <> None) = Hashtbl.mem model k)
           (List.init 61 Fun.id))

(* -- Linear hash -------------------------------------------------------------- *)

let mk_lhash ?(node_capacity = 4) () =
  let segment = Segment.create ~id:12 ~partition_bytes:8192 in
  Linear_hash.create ~segment ~log:nolog ~key_type:Schema.Int ~node_capacity
    ~initial_buckets:4 ()

let test_lhash_empty () =
  let h = mk_lhash () in
  check int_t "empty" 0 (Linear_hash.cardinality h);
  check bool_t "lookup none" true (Linear_hash.lookup h (Schema.int 1) = []);
  Linear_hash.check_invariants h

let test_lhash_insert_lookup () =
  let h = mk_lhash () in
  for i = 1 to 200 do
    Linear_hash.insert h ~log:nolog (Schema.int i) (tuple_addr i)
  done;
  check int_t "cardinality" 200 (Linear_hash.cardinality h);
  for i = 1 to 200 do
    check bool_t "found" true
      (Linear_hash.lookup_one h (Schema.int i) = Some (tuple_addr i))
  done;
  check bool_t "buckets grew" true (Linear_hash.bucket_count h > 4);
  Linear_hash.check_invariants h

let test_lhash_delete () =
  let h = mk_lhash () in
  for i = 1 to 100 do
    Linear_hash.insert h ~log:nolog (Schema.int i) (tuple_addr i)
  done;
  for i = 1 to 100 do
    if i mod 3 = 0 then
      check bool_t "deleted" true
        (Linear_hash.delete h ~log:nolog (Schema.int i) (tuple_addr i))
  done;
  check bool_t "absent delete false" false
    (Linear_hash.delete h ~log:nolog (Schema.int 3) (tuple_addr 3));
  for i = 1 to 100 do
    let expected = if i mod 3 = 0 then None else Some (tuple_addr i) in
    check bool_t "membership" true (Linear_hash.lookup_one h (Schema.int i) = expected)
  done;
  Linear_hash.check_invariants h

let test_lhash_duplicates () =
  let h = mk_lhash () in
  Linear_hash.insert h ~log:nolog (Schema.int 5) (tuple_addr 1);
  Linear_hash.insert h ~log:nolog (Schema.int 5) (tuple_addr 2);
  check int_t "both entries" 2 (List.length (Linear_hash.lookup h (Schema.int 5)));
  Alcotest.check_raises "duplicate entry"
    (Invalid_argument "Linear_hash.insert: duplicate entry") (fun () ->
      Linear_hash.insert h ~log:nolog (Schema.int 5) (tuple_addr 1))

let test_lhash_attach_roundtrip () =
  let segment = Segment.create ~id:12 ~partition_bytes:8192 in
  let h =
    Linear_hash.create ~segment ~log:nolog ~key_type:Schema.Int ~node_capacity:4
      ~initial_buckets:4 ()
  in
  for i = 1 to 300 do
    Linear_hash.insert h ~log:nolog (Schema.int i) (tuple_addr i)
  done;
  let rebuilt = Segment.create ~id:12 ~partition_bytes:8192 in
  Segment.iter
    (fun p -> Segment.install rebuilt (Partition.of_snapshot (Partition.snapshot p)))
    segment;
  let h' = Linear_hash.attach ~segment:rebuilt in
  check int_t "cardinality survives" 300 (Linear_hash.cardinality h');
  check int_t "bucket count survives" (Linear_hash.bucket_count h)
    (Linear_hash.bucket_count h');
  for i = 1 to 300 do
    check bool_t "entries survive" true
      (Linear_hash.lookup_one h' (Schema.int i) = Some (tuple_addr i))
  done;
  Linear_hash.check_invariants h'

let test_lhash_invalidate_cache () =
  let h = mk_lhash () in
  for i = 1 to 50 do
    Linear_hash.insert h ~log:nolog (Schema.int i) (tuple_addr i)
  done;
  Linear_hash.invalidate_cache h;
  check int_t "recount" 50 (Linear_hash.cardinality h);
  for i = 1 to 50 do
    check bool_t "still found" true
      (Linear_hash.lookup_one h (Schema.int i) = Some (tuple_addr i))
  done;
  Linear_hash.check_invariants h

let test_lhash_string_keys () =
  let segment = Segment.create ~id:12 ~partition_bytes:8192 in
  let h =
    Linear_hash.create ~segment ~log:nolog ~key_type:Schema.Str ~node_capacity:4 ()
  in
  Linear_hash.insert h ~log:nolog (Schema.S "alice") (tuple_addr 1);
  Linear_hash.insert h ~log:nolog (Schema.S "bob") (tuple_addr 2);
  check bool_t "alice" true (Linear_hash.lookup_one h (Schema.S "alice") = Some (tuple_addr 1));
  check bool_t "carol absent" true (Linear_hash.lookup h (Schema.S "carol") = []);
  Alcotest.check_raises "type mismatch"
    (Invalid_argument "Linear_hash.insert: key type mismatch") (fun () ->
      Linear_hash.insert h ~log:nolog (Schema.int 1) (tuple_addr 0))

let test_lhash_rejects_bad_config () =
  let segment = Segment.create ~id:12 ~partition_bytes:8192 in
  Alcotest.check_raises "non power of two"
    (Invalid_argument "Linear_hash.create: initial_buckets must be a power of two")
    (fun () ->
      ignore
        (Linear_hash.create ~segment ~log:nolog ~key_type:Schema.Int
           ~initial_buckets:3 ()))

let prop_lhash_model =
  QCheck.Test.make ~name:"linear hash = set model under random ops" ~count:60
    QCheck.(make Gen.(list_size (int_range 0 400) (pair bool (int_bound 80))))
    (fun ops ->
      let h = mk_lhash ~node_capacity:3 () in
      let model = Hashtbl.create 64 in
      List.iter
        (fun (is_insert, key) ->
          let a = tuple_addr key in
          if is_insert then begin
            if not (Hashtbl.mem model key) then begin
              Linear_hash.insert h ~log:nolog (Schema.int key) a;
              Hashtbl.replace model key ()
            end
          end
          else begin
            let deleted = Linear_hash.delete h ~log:nolog (Schema.int key) a in
            if deleted <> Hashtbl.mem model key then failwith "delete result mismatch";
            Hashtbl.remove model key
          end)
        ops;
      Linear_hash.check_invariants h;
      Linear_hash.cardinality h = Hashtbl.length model
      && List.for_all
           (fun k ->
             (Linear_hash.lookup_one h (Schema.int k) <> None) = Hashtbl.mem model k)
           (List.init 81 Fun.id))

(* Logged index updates: every touched component produces a log record, and
   replaying those records rebuilds an equivalent index. *)
let test_index_ops_are_replayable () =
  let segment = Segment.create ~id:13 ~partition_bytes:8192 in
  let ops = ref [] in
  let log part ~redo ~undo:_ = ops := (part, redo) :: !ops in
  let t = T_tree.create ~segment ~log ~key_type:Schema.Int ~max_items:4 () in
  for i = 1 to 120 do
    T_tree.insert t ~log (Schema.int i) (tuple_addr i)
  done;
  for i = 1 to 120 do
    if i mod 4 = 0 then ignore (T_tree.delete t ~log (Schema.int i) (tuple_addr i))
  done;
  check bool_t "multi-component updates logged" true (List.length !ops > 120);
  (* Replay the physical log onto empty partitions. *)
  let replayed = Segment.create ~id:13 ~partition_bytes:8192 in
  List.iter
    (fun ((part : Addr.partition), op) ->
      let p =
        match Segment.find replayed part.Addr.partition with
        | Some p -> p
        | None ->
            let rec alloc () =
              let p = Segment.allocate_partition replayed in
              if Partition.partition_id p = part.Addr.partition then p else alloc ()
            in
            alloc ()
      in
      Part_op.apply p op)
    (List.rev !ops);
  let t' = T_tree.attach ~segment:replayed in
  check int_t "replayed cardinality" (T_tree.cardinality t) (T_tree.cardinality t');
  for i = 1 to 120 do
    check bool_t "replayed membership" true
      (T_tree.lookup_one t' (Schema.int i) = T_tree.lookup_one t (Schema.int i))
  done;
  T_tree.check_invariants t'

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "mrdb_index"
    [
      ( "t_tree",
        [
          Alcotest.test_case "empty" `Quick test_ttree_empty;
          Alcotest.test_case "insert+lookup" `Quick test_ttree_insert_lookup;
          Alcotest.test_case "balance" `Quick test_ttree_balanced_after_sequential_inserts;
          Alcotest.test_case "duplicate keys" `Quick test_ttree_duplicate_keys_different_addrs;
          Alcotest.test_case "duplicate entry rejected" `Quick test_ttree_duplicate_entry_rejected;
          Alcotest.test_case "delete" `Quick test_ttree_delete;
          Alcotest.test_case "delete all" `Quick test_ttree_delete_all;
          Alcotest.test_case "range" `Quick test_ttree_range;
          Alcotest.test_case "min/max" `Quick test_ttree_min_max;
          Alcotest.test_case "iter in order" `Quick test_ttree_iter_in_order;
          Alcotest.test_case "attach after recovery" `Quick test_ttree_attach_roundtrip;
          Alcotest.test_case "invalidate cache" `Quick test_ttree_invalidate_cache;
          Alcotest.test_case "string keys" `Quick test_ttree_string_keys;
        ]
        @ qsuite [ prop_ttree_model ] );
      ( "linear_hash",
        [
          Alcotest.test_case "empty" `Quick test_lhash_empty;
          Alcotest.test_case "insert+lookup+grow" `Quick test_lhash_insert_lookup;
          Alcotest.test_case "delete" `Quick test_lhash_delete;
          Alcotest.test_case "duplicates" `Quick test_lhash_duplicates;
          Alcotest.test_case "attach after recovery" `Quick test_lhash_attach_roundtrip;
          Alcotest.test_case "invalidate cache" `Quick test_lhash_invalidate_cache;
          Alcotest.test_case "string keys" `Quick test_lhash_string_keys;
          Alcotest.test_case "rejects bad config" `Quick test_lhash_rejects_bad_config;
        ]
        @ qsuite [ prop_lhash_model ] );
      ( "replayability",
        [ Alcotest.test_case "physical log rebuilds index" `Quick test_index_ops_are_replayable ] );
    ]
