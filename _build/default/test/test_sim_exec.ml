(* Tests for the discrete-event multiprogramming executor: concurrent
   no-wait clients against one database, with contention, retries, and
   crash consistency under concurrency. *)

open Mrdb_storage
open Mrdb_core

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

let schema = Schema.of_list [ ("k", Schema.Int); ("v", Schema.Int) ]

let mk_db_with_rows n =
  let db = Db.create ~config:Config.small () in
  Db.create_relation db ~name:"t" ~schema;
  let addrs = Array.make n Addr.null in
  Db.with_txn db (fun tx ->
      for i = 0 to n - 1 do
        addrs.(i) <- Db.insert db tx ~rel:"t" [| Schema.int i; Schema.int 0 |]
      done);
  Db.quiesce db;
  (db, addrs)

let bump addrs ~key : Sim_exec.op =
 fun db tx ->
  match Db.read db tx ~rel:"t" addrs.(key) with
  | Some tup ->
      let v = Schema.to_int (Tuple.field tup 1) in
      ignore (Db.update_field db tx ~rel:"t" addrs.(key) ~column:"v" (Schema.int (v + 1)))
  | None -> failwith "row missing"

let test_single_client_commits () =
  let db, addrs = mk_db_with_rows 50 in
  let stats =
    Sim_exec.run ~db ~clients:1 ~duration_us:200_000.0 ~think_us:500.0
      ~make_txn:(fun rng -> [ bump addrs ~key:(Mrdb_util.Rng.int rng 50) ])
      ()
  in
  check bool_t "committed many" true (stats.Sim_exec.committed > 50);
  check int_t "no aborts alone" 0 stats.Sim_exec.aborted;
  check bool_t "latencies recorded" true
    (Mrdb_util.Stats.count stats.Sim_exec.latencies_us = stats.Sim_exec.committed)

let test_disjoint_clients_no_aborts () =
  let db, addrs = mk_db_with_rows 64 in
  (* Each client owns a private key range: no conflicts possible. *)
  let client_id = ref (-1) in
  let stats =
    Sim_exec.run ~db ~clients:4 ~duration_us:150_000.0 ~think_us:400.0 ~seed:5
      ~make_txn:(fun rng ->
        ignore rng;
        incr client_id;
        let base = !client_id mod 4 * 16 in
        [ bump addrs ~key:(base + Mrdb_util.Rng.int rng 16) ])
      ()
  in
  check int_t "no aborts on disjoint data" 0 stats.Sim_exec.aborted;
  check bool_t "all clients progressed" true (stats.Sim_exec.committed > 100)

let test_contention_causes_aborts_and_retries () =
  let db, addrs = mk_db_with_rows 4 in
  (* Everyone hammers 4 rows with 2-step transactions: conflicts are
     certain under interleaving. *)
  let stats =
    Sim_exec.run ~db ~clients:8 ~duration_us:200_000.0 ~think_us:200.0 ~seed:7
      ~make_txn:(fun rng ->
        let a = Mrdb_util.Rng.int rng 4 in
        let b = (a + 1 + Mrdb_util.Rng.int rng 3) mod 4 in
        [ bump addrs ~key:a; bump addrs ~key:b ])
      ()
  in
  check bool_t "aborts under contention" true (stats.Sim_exec.aborted > 0);
  check bool_t "retries happened" true (stats.Sim_exec.retries > 0);
  check bool_t "still progresses" true (stats.Sim_exec.committed > 20);
  check bool_t "abort fraction sane" true (Sim_exec.abort_fraction stats < 1.0)

let test_no_lost_updates () =
  (* The serializability check: concurrent increments must all be visible —
     the final counter values sum to the number of committed increments. *)
  let db, addrs = mk_db_with_rows 8 in
  let stats =
    Sim_exec.run ~db ~clients:6 ~duration_us:250_000.0 ~think_us:300.0 ~seed:11
      ~make_txn:(fun rng -> [ bump addrs ~key:(Mrdb_util.Rng.int rng 8) ])
      ()
  in
  let total =
    Db.with_txn db (fun tx ->
        List.fold_left
          (fun acc (_, tup) -> acc + Schema.to_int (Tuple.field tup 1))
          0
          (Db.scan db tx ~rel:"t"))
  in
  check int_t "sum of counters = committed increments" stats.Sim_exec.committed total

let test_crash_after_concurrent_run () =
  let db, addrs = mk_db_with_rows 16 in
  let stats =
    Sim_exec.run ~db ~clients:4 ~duration_us:200_000.0 ~think_us:300.0 ~seed:13
      ~make_txn:(fun rng -> [ bump addrs ~key:(Mrdb_util.Rng.int rng 16) ])
      ()
  in
  let sum db =
    Db.with_txn db (fun tx ->
        List.fold_left
          (fun acc (_, tup) -> acc + Schema.to_int (Tuple.field tup 1))
          0
          (Db.scan db tx ~rel:"t"))
  in
  let before = sum db in
  check int_t "consistent before crash" stats.Sim_exec.committed before;
  Db.crash db;
  Db.recover db;
  check int_t "all concurrent commits durable" before (sum db)

let test_throughput_scales_until_cpu_saturates () =
  let run clients =
    let db, addrs = mk_db_with_rows 256 in
    let stats =
      Sim_exec.run ~db ~clients ~duration_us:200_000.0 ~think_us:2000.0 ~seed:3
        ~make_txn:(fun rng -> [ bump addrs ~key:(Mrdb_util.Rng.int rng 256) ])
        ()
    in
    Sim_exec.throughput_per_s stats ~duration_us:200_000.0
  in
  let t1 = run 1 and t4 = run 4 in
  check bool_t "more clients, more throughput" true (t4 > 1.5 *. t1)

let () =
  Alcotest.run "mrdb_sim_exec"
    [
      ( "executor",
        [
          Alcotest.test_case "single client" `Quick test_single_client_commits;
          Alcotest.test_case "disjoint clients never abort" `Quick test_disjoint_clients_no_aborts;
          Alcotest.test_case "contention aborts + retries" `Quick
            test_contention_causes_aborts_and_retries;
          Alcotest.test_case "no lost updates" `Quick test_no_lost_updates;
          Alcotest.test_case "crash after concurrent run" `Quick test_crash_after_concurrent_run;
          Alcotest.test_case "throughput scales" `Quick test_throughput_scales_until_cpu_saturates;
        ] );
    ]
