(* Discrete-event cross-checks for the analytic graphs: run the recovery
   component's pipeline (record sort → bin pages → log disk) on the
   simulated 1-MIPS recovery CPU with the Table 2 instruction costs and
   measure the achieved rates.  The analytic model and the simulation
   should agree closely — the simulation additionally captures disk
   contention that the closed forms ignore. *)

module Sim = Mrdb_sim.Sim
module Cpu = Mrdb_sim.Cpu
module P = Mrdb_analysis.Params
module LM = Mrdb_analysis.Log_model

(* Simulate sorting [n_records] through the pipeline; returns records/s. *)
let simulate_logging_rate (p : P.t) ~n_records =
  let sim = Sim.create () in
  let cpu = Cpu.create ~name:"recovery" sim ~mips:p.P.p_recovery_mips in
  let disk =
    Mrdb_hw.Disk.create ~name:"log" sim
      ~params:
        {
          (Mrdb_hw.Disk.default_log_params ~page_bytes:p.P.s_log_page) with
          Mrdb_hw.Disk.page_transfer_us = p.P.d_page_transfer_us;
          seek_near_us = p.P.d_seek_near_us;
          seek_avg_us = p.P.d_seek_avg_us;
        }
      ~capacity_pages:4096
  in
  let records_per_page = p.P.s_log_page / p.P.s_log_record in
  let sort_cost = int_of_float (LM.i_record_sort p) in
  let page_cost = int_of_float (LM.i_page_write p) in
  let next_disk_page = ref 0 in
  let in_page = ref 0 in
  let done_at = ref 0.0 in
  let rec feed remaining =
    if remaining = 0 then done_at := Sim.now sim
    else
      Cpu.execute cpu ~instructions:sort_cost (fun () ->
          incr in_page;
          if !in_page >= records_per_page then begin
            in_page := 0;
            (* The CPU also pays the page-write initiation cost; the write
               itself proceeds on the disk concurrently. *)
            let page = !next_disk_page mod 4096 in
            incr next_disk_page;
            Cpu.execute cpu ~instructions:page_cost (fun () ->
                Mrdb_hw.Disk.write_page disk ~page
                  (Bytes.make p.P.s_log_page 'x')
                  (fun () -> ());
                feed (remaining - 1))
          end
          else feed (remaining - 1))
  in
  feed n_records;
  Sim.run sim;
  float_of_int n_records /. (!done_at /. 1e6)

let graph1_sim ~record_sizes ~page_sizes (p : P.t) =
  List.map
    (fun s_rec ->
      ( float_of_int s_rec,
        List.map
          (fun s_page ->
            simulate_logging_rate
              (P.with_sizes ~s_log_record:s_rec ~s_log_page:s_page p)
              ~n_records:20_000)
          page_sizes ))
    record_sizes
