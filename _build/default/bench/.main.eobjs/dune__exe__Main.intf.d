bench/main.mli:
