bench/sim_graphs.ml: Bytes List Mrdb_analysis Mrdb_hw Mrdb_sim
