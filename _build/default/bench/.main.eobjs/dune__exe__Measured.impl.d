bench/measured.ml: Char Config Db Hashtbl List Mrdb_core Mrdb_sim Mrdb_storage Mrdb_util Mrdb_wal Printf Sim_exec Stdlib String Workload
