(** The well-known location.

    "The information needed to restore the catalogs is a list of catalog
    partition addresses, and this is kept in a well-known location — it is
    stored twice" (§2.5).  This module serializes the catalog partitions'
    checkpoint locations into the stable layout's well-known region as two
    redundant, CRC-protected copies; after a crash the recovery manager
    loads whichever copy verifies and bootstraps catalog recovery from it.

    Catalog partitions with no checkpoint image yet are listed with
    [ckpt_page = -1]; they recover from their log records alone. *)

open Mrdb_storage

type entry = {
  part : Addr.partition;   (** a catalog partition *)
  ckpt_page : int;         (** first page of its checkpoint image; -1 = none *)
  pages : int;
}

val store : Mrdb_wal.Stable_layout.t -> entry list -> unit
(** Write both copies.  @raise Invalid_argument when the encoding exceeds
    half of the well-known region. *)

val load : Mrdb_wal.Stable_layout.t -> entry list option
(** The first copy that verifies; [None] when neither does (fresh
    system). *)
