lib/recovery/wellknown.mli: Addr Mrdb_storage Mrdb_wal
