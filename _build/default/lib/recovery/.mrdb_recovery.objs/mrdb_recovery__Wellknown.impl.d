lib/recovery/wellknown.ml: Addr Bytes List Mrdb_hw Mrdb_storage Mrdb_util Mrdb_wal
