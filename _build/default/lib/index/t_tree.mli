(** T-tree index.

    The MM-DBMS index structure of Lehman & Carey (VLDB '86) that the
    recovery paper's log records refer to ("T-tree nodes"): an AVL-balanced
    binary tree whose nodes each hold a sorted array of up to [max_items]
    (key, tuple-address) entries.  A search descends while the key is
    outside a node's [min,max] span and binary-searches the {e bounding
    node} it lands in.

    Entries are composite-keyed by (key value, tuple address), so duplicate
    key values are supported and every entry is unique.

    Every node is also persisted as an entity in the index segment via
    {!Entity_io}, with one physical log record per touched node per update
    — multi-node operations (splits, rotations, rebalancing) therefore emit
    several log records, as §2.3.2 of the paper describes.  After a crash
    the tree is re-attached from its recovered segment. *)

open Mrdb_storage

type t

val create :
  segment:Segment.t -> log:Relation.log_sink -> key_type:Schema.column_type ->
  ?max_items:int -> unit -> t
(** Build an empty tree; writes the tree's state entity (root pointer,
    parameters) as the segment's first entity.  [max_items] defaults to 16;
    minimum occupancy for internal nodes is [max_items / 2]. *)

val attach : segment:Segment.t -> t
(** Re-open a tree whose segment was just recovered; decodes the state
    entity and resolves nodes lazily.
    @raise Failure when the state entity is missing or malformed. *)

val node_pad_bytes : max_items:int -> int
(** Worst-case stored node size for the given fan-out — what each node
    entity (and hence each index log record) occupies.  Lets configuration
    validation check nodes against log-page and SLB-block capacities. *)

val segment : t -> Segment.t
val key_type : t -> Schema.column_type
val max_items : t -> int
val cardinality : t -> int

val insert : t -> log:Relation.log_sink -> Schema.value -> Addr.t -> unit
(** Add an entry.  Inserting an identical (key, addr) pair twice is an
    error. @raise Invalid_argument on key type mismatch or duplicate entry. *)

val delete : t -> log:Relation.log_sink -> Schema.value -> Addr.t -> bool
(** Remove an entry; false when absent. *)

val lookup : t -> Schema.value -> Addr.t list
(** All tuple addresses with the given key, in address order. *)

val lookup_one : t -> Schema.value -> Addr.t option

val range : t -> lo:Schema.value option -> hi:Schema.value option -> (Schema.value * Addr.t) list
(** Entries with lo <= key <= hi (inclusive bounds; [None] = unbounded), in
    key order. *)

val iter : (Schema.value -> Addr.t -> unit) -> t -> unit
(** In key order. *)

val min_entry : t -> (Schema.value * Addr.t) option
val max_entry : t -> (Schema.value * Addr.t) option

val invalidate_cache : t -> unit
(** Drop all decoded-node caching (physical-UNDO coherence: the transaction
    manager calls this after applying undo images to index partitions). *)

val height : t -> int

val check_invariants : t -> unit
(** Test hook: verifies AVL balance, key ordering across nodes, node
    occupancy bounds and cache/entity agreement.
    @raise Failure when violated. *)
