(** Logged entity I/O for index components.

    Index structures (T-tree nodes, linear-hash buckets) live as entities
    in the index's own segment so that index partitions are checkpointed
    and recovered exactly like relation partitions.  Every allocation,
    write and free emits a physical REDO/UNDO pair through the supplied
    sink — "a log record must be written for each updated index
    component". *)

open Mrdb_storage

type t

val create : segment:Segment.t -> t
val segment : t -> Segment.t

val alloc : t -> log:Relation.log_sink -> bytes -> Addr.t
(** Store a fresh component.
    @raise Failure when the component exceeds the partition size. *)

val read : t -> Addr.t -> bytes
(** @raise Not_found for dead addresses or non-resident partitions. *)

val write : t -> log:Relation.log_sink -> Addr.t -> bytes -> unit
(** @raise Not_found for dead addresses. *)

val free : t -> log:Relation.log_sink -> Addr.t -> unit
(** @raise Not_found for dead addresses. *)

val pad_to : int -> bytes -> bytes
(** [pad_to n b] right-pads [b] with zero bytes up to [n] (returns [b]
    unchanged when already at least [n] long).  Index components are stored
    padded to a fixed worst-case size so that in-place updates can never
    run out of partition space: component addresses must stay stable, so a
    grown component cannot be relocated. *)
