lib/index/t_tree.ml: Addr Array Entity_io Format List Mrdb_storage Mrdb_util Printf Schema Segment Stdlib Tuple
