lib/index/t_tree.mli: Addr Mrdb_storage Relation Schema Segment
