lib/index/linear_hash.mli: Addr Mrdb_storage Relation Schema Segment
