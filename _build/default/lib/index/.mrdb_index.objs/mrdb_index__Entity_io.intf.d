lib/index/entity_io.mli: Addr Mrdb_storage Relation Segment
