lib/index/entity_io.ml: Addr Bytes Mrdb_storage Part_op Partition Segment
