lib/index/linear_hash.ml: Addr Array Char Entity_io Format Int64 List Mrdb_storage Mrdb_util Partition Printf Schema Segment Stdlib String Tuple
