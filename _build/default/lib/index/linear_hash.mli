(** Modified linear hashing index.

    The second MM-DBMS index structure the paper's log records reference
    ("Modified Linear Hash nodes", after Lehman & Carey VLDB '86): a
    linear-hash table whose directory maps bucket numbers to chains of
    fixed-capacity {e hash nodes}.  The split pointer advances whenever the
    average chain occupancy exceeds a threshold, splitting one bucket at a
    time, so the table grows smoothly with no global rehash.

    The volatile parts (the directory array) are rebuilt at attach time
    from the persistent hash nodes, each of which records its bucket
    number.  Node writes are logged per component via {!Entity_io}, exactly
    like T-tree nodes. *)

open Mrdb_storage

type t

val create :
  segment:Segment.t -> log:Relation.log_sink -> key_type:Schema.column_type ->
  ?node_capacity:int -> ?initial_buckets:int -> ?max_load:float -> unit -> t
(** [node_capacity] entries per hash node (default 8); [initial_buckets]
    must be a power of two (default 4); [max_load] is the average number of
    entries per bucket that triggers a split (default 0.75 × capacity). *)

val attach : segment:Segment.t -> t
(** Rebuild from a recovered segment (state entity + node scan).
    @raise Failure when the state entity is missing or malformed. *)

val node_pad_bytes : node_capacity:int -> int
(** Worst-case stored node size for the given capacity (see
    {!T_tree.node_pad_bytes}). *)

val segment : t -> Segment.t
val key_type : t -> Schema.column_type
val cardinality : t -> int
val bucket_count : t -> int

val insert : t -> log:Relation.log_sink -> Schema.value -> Addr.t -> unit
(** @raise Invalid_argument on key type mismatch or duplicate
    (key, address) entry. *)

val delete : t -> log:Relation.log_sink -> Schema.value -> Addr.t -> bool

val lookup : t -> Schema.value -> Addr.t list
val lookup_one : t -> Schema.value -> Addr.t option

val iter : (Schema.value -> Addr.t -> unit) -> t -> unit
(** Unordered. *)

val invalidate_cache : t -> unit
(** Physical-UNDO coherence hook; re-reads state and directory. *)

val check_invariants : t -> unit
(** Entries hash to the bucket that holds them; state entity agrees with
    memory; chains respect node capacity.  @raise Failure when violated. *)
