(** Entity and partition addresses.

    "An entity is referenced by its memory address (Segment Number,
    Partition Number, and Partition Offset)."  The partition offset in this
    implementation is a {e slot index} within the partition's slot
    directory, which stays stable across intra-partition compaction. *)

(** Address of a whole partition. *)
type partition = { segment : int; partition : int }

(** Address of an entity (tuple or index component). *)
type t = { segment : int; partition : int; slot : int }

val make : segment:int -> partition:int -> slot:int -> t
val partition_of : t -> partition
val in_partition : partition -> slot:int -> t

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val equal_partition : partition -> partition -> bool
val compare_partition : partition -> partition -> int
val hash_partition : partition -> int

val pp : Format.formatter -> t -> unit
val pp_partition : Format.formatter -> partition -> unit
val to_string : t -> string

val encode : Mrdb_util.Codec.Enc.t -> t -> unit
val decode : Mrdb_util.Codec.Dec.t -> t
val encode_partition : Mrdb_util.Codec.Enc.t -> partition -> unit
val decode_partition : Mrdb_util.Codec.Dec.t -> partition

val null : t
(** A distinguished invalid address (all components -1), used as the "no
    parent / no child" marker inside serialized index nodes. *)

val is_null : t -> bool

(** Hashtbl over entity addresses. *)
module Table : Hashtbl.S with type key = t

(** Hashtbl over partition addresses. *)
module Partition_table : Hashtbl.S with type key = partition
