(** Relation schemas and typed field values. *)

type column_type = Int | Float | Str

type column = { name : string; ty : column_type }

type t
(** An ordered list of named, typed columns. *)

val make : column list -> t
(** @raise Invalid_argument on duplicate column names or empty schemas. *)

val of_list : (string * column_type) list -> t
val columns : t -> column array
val arity : t -> int
val column_index : t -> string -> int
(** @raise Not_found for unknown names. *)

val column_type : t -> int -> column_type

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

val encode : Mrdb_util.Codec.Enc.t -> t -> unit
val decode : Mrdb_util.Codec.Dec.t -> t

(** A single field value. *)
type value = I of int64 | F of float | S of string

val value_matches : column_type -> value -> bool
val compare_value : value -> value -> int
(** Total order within a type; comparing different constructors orders
    I < F < S (needed only by generic code paths; indices always compare
    same-typed keys). *)

val equal_value : value -> value -> bool
val pp_value : Format.formatter -> value -> unit

val int : int -> value
(** Convenience: [int n] is [I (Int64.of_int n)]. *)

val to_int : value -> int
(** @raise Invalid_argument when not an [I]. *)

val to_string_value : value -> string
(** @raise Invalid_argument when not an [S]. *)

val to_float : value -> float
(** @raise Invalid_argument when not an [F]. *)
