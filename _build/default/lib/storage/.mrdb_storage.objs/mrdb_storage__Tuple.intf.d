lib/storage/tuple.mli: Format Mrdb_util Schema
