lib/storage/segment.mli: Addr Partition
