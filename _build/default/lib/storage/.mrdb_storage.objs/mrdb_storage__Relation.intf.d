lib/storage/relation.mli: Addr Part_op Schema Segment Tuple
