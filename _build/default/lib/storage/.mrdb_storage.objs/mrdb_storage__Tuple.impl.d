lib/storage/tuple.ml: Array Bytes Format Int64 Mrdb_util Printf Schema
