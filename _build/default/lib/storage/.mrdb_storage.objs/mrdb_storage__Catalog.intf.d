lib/storage/catalog.mli: Addr Relation Schema Segment
