lib/storage/catalog.ml: Addr Format Hashtbl Int List Mrdb_util Part_op Partition Printf Schema Segment Stdlib
