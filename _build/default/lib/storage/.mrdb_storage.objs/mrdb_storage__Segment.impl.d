lib/storage/segment.ml: Addr Array List Partition Stdlib
