lib/storage/part_op.ml: Bytes Format Mrdb_util Partition Printf
