lib/storage/relation.ml: Addr Bytes Part_op Partition Printf Schema Segment Tuple
