lib/storage/partition.ml: Addr Bytes Format Int List Mrdb_util Printf Stdlib
