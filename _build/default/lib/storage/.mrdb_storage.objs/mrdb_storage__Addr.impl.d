lib/storage/addr.ml: Format Hashtbl Int Mrdb_util
