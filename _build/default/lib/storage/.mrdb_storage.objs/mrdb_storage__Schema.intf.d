lib/storage/schema.mli: Format Mrdb_util
