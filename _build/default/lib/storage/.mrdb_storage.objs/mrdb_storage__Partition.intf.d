lib/storage/partition.mli: Addr Format
