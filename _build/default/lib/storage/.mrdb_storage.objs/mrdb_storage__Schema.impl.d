lib/storage/schema.ml: Array Float Format Hashtbl Int64 List Mrdb_util Printf String
