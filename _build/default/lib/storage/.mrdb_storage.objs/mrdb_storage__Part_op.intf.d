lib/storage/part_op.mli: Format Mrdb_util Partition
