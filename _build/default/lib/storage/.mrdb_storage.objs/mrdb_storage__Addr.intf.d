lib/storage/addr.mli: Format Hashtbl Mrdb_util
