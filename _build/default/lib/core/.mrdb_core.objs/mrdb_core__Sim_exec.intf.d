lib/core/sim_exec.mli: Db Mrdb_util
