lib/core/sim_exec.ml: Db Mrdb_sim Mrdb_util
