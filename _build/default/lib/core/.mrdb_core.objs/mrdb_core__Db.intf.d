lib/core/db.mli: Addr Catalog Config Mrdb_archive Mrdb_hw Mrdb_sim Mrdb_storage Mrdb_wal Schema Tuple
