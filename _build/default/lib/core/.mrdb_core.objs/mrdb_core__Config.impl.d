lib/core/config.ml: Mrdb_index Mrdb_wal Stdlib
