lib/core/workload.mli: Db Mrdb_util
