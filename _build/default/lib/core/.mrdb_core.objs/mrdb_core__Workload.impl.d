lib/core/workload.ml: Addr Array Catalog Db Int64 List Mrdb_storage Mrdb_util Schema Stdlib Tuple
