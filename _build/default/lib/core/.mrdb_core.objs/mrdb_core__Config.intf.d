lib/core/config.mli: Mrdb_wal
