open Mrdb_storage
module Sim = Mrdb_sim.Sim
module Cpu = Mrdb_sim.Cpu
module Trace = Mrdb_sim.Trace
module Stable_layout = Mrdb_wal.Stable_layout
module Slb = Mrdb_wal.Slb
module Slt = Mrdb_wal.Slt
module Log_record = Mrdb_wal.Log_record
module Log_disk = Mrdb_wal.Log_disk
module Lock_mgr = Mrdb_txn.Lock_mgr
module Txn_core = Mrdb_txn.Txn
module Undo_space = Mrdb_txn.Undo_space
module T_tree = Mrdb_index.T_tree
module Linear_hash = Mrdb_index.Linear_hash
module Disk_map = Mrdb_ckpt.Disk_map
module Ckpt_queue = Mrdb_ckpt.Ckpt_queue
module Ckpt_image = Mrdb_ckpt.Ckpt_image
module Wellknown = Mrdb_recovery.Wellknown
module Archive = Mrdb_archive.Archive

exception Aborted of string
exception Crashed
exception Unknown_relation of string
exception Unknown_index of string

type index_inst = Tt of T_tree.t | Lh of Linear_hash.t

type rel_rt = {
  desc : Catalog.rel_desc;
  relation : Relation.t;
  mutable index_insts : (Catalog.index_desc * index_inst) list;
  mutable indices_attached : bool;
}

type vol = {
  slb : Slb.t;
  slt : Slt.t;
  cat : Catalog.t;
  segments : (int, Segment.t) Hashtbl.t;
  rels : (string, rel_rt) Hashtbl.t;
  lock_mgr : Lock_mgr.t;
  txn_mgr : Txn_core.Manager.mgr;
  disk_map : Disk_map.t;
  ckpt_q : Ckpt_queue.t;
  seq : int Addr.Partition_table.t;
  group : Txn_core.t Queue.t;
  overlay_by_segment : (int, index_inst) Hashtbl.t;
}

type t = {
  cfg : Config.t;
  sim : Sim.t;
  main_cpu : Cpu.t;
  recovery_cpu : Cpu.t;
  stable_mem : Mrdb_hw.Stable_mem.t;
  epoch : Mrdb_hw.Volatile.Epoch.t;
  mutable layout : Stable_layout.t;
  log_disk : Log_disk.t;
  mutable ckpt_disk : Mrdb_hw.Disk.t;
  archiver : Archive.t option; (* the tape survives crashes *)
  trace : Trace.t;
  mutable vol : vol option;
}

type txn = Txn_core.t

let config t = t.cfg
let sim t = t.sim
let trace t = t.trace
let txn_id = Txn_core.id

let vol t = match t.vol with Some v -> v | None -> raise Crashed

let pump_until t cond =
  while (not (cond ())) && Sim.step t.sim do () done;
  if not (cond ()) then failwith "Db: simulation deadlock (condition never satisfied)"

let quiesce t =
  Sim.run t.sim

(* -- logging plumbing ---------------------------------------------------- *)

let is_index_segment v seg = Hashtbl.mem v.overlay_by_segment seg

let tag_for v (part : Addr.partition) =
  if part.Addr.segment = Catalog.catalog_segment_id then Log_record.Catalog_op
  else if is_index_segment v part.Addr.segment then Log_record.Index_op
  else Log_record.Relation_op

let next_seq v part =
  let c =
    match Addr.Partition_table.find_opt v.seq part with Some c -> c | None -> 0
  in
  Addr.Partition_table.replace v.seq part (c + 1);
  c + 1

(* Table 2 instruction costs, charged against the dedicated 1-MIPS recovery
   CPU as it sorts records into bins and initiates page writes.  The work
   is asynchronous with respect to commit (transactions never wait for the
   sort — §2.3.1), so the charge is fire-and-forget: it occupies the
   recovery CPU's simulated time and shows up in throughput measurements,
   not in commit latency. *)
let record_sort_fixed_instr = 43 (* lookup 20 + page check 10 + copy startup 3 + page info 10 *)
let copy_instr_per_byte = 1.0 (* 0.125 instr/byte, read + write, stable memory 4x slower *)
let page_write_instr = 640 (* write init 500 + page alloc 100 + LSN bookkeeping 40 *)

let drain t v =
  let records = ref 0 and bytes = ref 0 in
  let pages0 = Log_disk.pages_written t.log_disk in
  ignore
    (Slb.drain v.slb ~f:(fun ~txn_id:_ rs ->
         List.iter
           (fun r ->
             incr records;
             bytes := !bytes + Log_record.encoded_size r)
           rs;
         Slt.accept_all v.slt rs));
  let pages = Log_disk.pages_written t.log_disk - pages0 in
  let instructions =
    (record_sort_fixed_instr * !records)
    + int_of_float (copy_instr_per_byte *. float_of_int !bytes)
    + (page_write_instr * pages)
  in
  if instructions > 0 then Cpu.execute t.recovery_cpu ~instructions (fun () -> ())

(* Forward declaration dance: logging a user record may require registering
   its partition in the catalog, which itself logs records under a system
   transaction. *)
let rec log_redo_raw t v ~txn_id (part : Addr.partition) op =
  if part.Addr.segment <> Catalog.catalog_segment_id then ensure_registered t v part;
  let bin_index = Slt.bin_index_of v.slt part in
  let seq = next_seq v part in
  Slb.append v.slb ~txn_id
    (Log_record.make ~tag:(tag_for v part) ~bin_index ~txn_id ~seq ~op);
  Trace.incr t.trace "log_records"

and ensure_registered t v part =
  if Catalog.partition_desc v.cat part = None then
    with_system_txn t v (fun sink ->
        ignore (Catalog.register_partition v.cat ~log:sink part))

and with_system_txn : 'a. t -> vol -> (Relation.log_sink -> 'a) -> 'a =
 fun t v f ->
  let tx = Txn_core.Manager.begin_txn v.txn_mgr in
  let sink part ~redo ~undo:_ = log_redo_raw t v ~txn_id:(Txn_core.id tx) part redo in
  let result = f sink in
  Slb.commit v.slb ~txn_id:(Txn_core.id tx);
  Txn_core.Manager.commit v.txn_mgr tx;
  drain t v;
  result

let user_sink t v tx : Relation.log_sink =
 fun part ~redo ~undo ->
  if part.Addr.segment <> Catalog.catalog_segment_id then ensure_registered t v part;
  Txn_core.Manager.record_update v.txn_mgr tx part ~redo ~undo;
  let bin_index = Slt.bin_index_of v.slt part in
  let seq = next_seq v part in
  Slb.append v.slb ~txn_id:(Txn_core.id tx)
    (Log_record.make ~tag:(tag_for v part) ~bin_index ~txn_id:(Txn_core.id tx) ~seq
       ~op:redo);
  Trace.incr t.trace "log_records"

let update_wellknown t v =
  let cat_rel = Catalog.catalog_rel v.cat in
  let entries =
    List.map
      (fun (d : Catalog.partition_desc) ->
        { Wellknown.part = d.Catalog.part; ckpt_page = d.Catalog.ckpt_page;
          pages = d.Catalog.ckpt_page_count })
      cat_rel.Catalog.partitions
  in
  Wellknown.store t.layout entries

(* -- transaction control -------------------------------------------------- *)

let do_abort t v tx =
  Slb.abort v.slb ~txn_id:(Txn_core.id tx);
  Txn_core.Manager.abort v.txn_mgr tx;
  ignore (Lock_mgr.release_all v.lock_mgr ~txn:(Txn_core.id tx));
  Trace.incr t.trace "aborts"

let acquire t v tx resource mode =
  match Lock_mgr.acquire v.lock_mgr ~txn:(Txn_core.id tx) resource mode with
  | Lock_mgr.Granted -> ()
  | Lock_mgr.Blocked ->
      do_abort t v tx;
      raise
        (Aborted
           (Format.asprintf "lock conflict on %a (synchronous facade aborts instead of waiting)"
              Lock_mgr.pp_resource resource))
  | Lock_mgr.Deadlock ->
      do_abort t v tx;
      raise (Aborted "deadlock victim")

(* -- residency & recovery of partitions ----------------------------------- *)

let segment_of t v seg_id =
  match Hashtbl.find_opt v.segments seg_id with
  | Some s -> s
  | None ->
      let s = Segment.create ~id:seg_id ~partition_bytes:t.cfg.Config.partition_bytes in
      (* Claim the partition numbers the catalog already assigns to this
         segment before any allocation: a fresh post-crash insert must not
         collide with a not-yet-recovered partition's number (and seq
         space). *)
      (match Catalog.relation_of_segment v.cat seg_id with
      | Some rel ->
          List.iter
            (fun (d : Catalog.partition_desc) ->
              if d.Catalog.part.Addr.segment = seg_id then
                Segment.reserve s d.Catalog.part.Addr.partition)
            rel.Catalog.partitions
      | None -> ());
      Hashtbl.add v.segments seg_id s;
      s

(* Read a partition's checkpoint image; when the checkpoint disk cannot
   produce a valid image (media failure), fall back to the newest archived
   copy — the archive saw every image ever written, so its newest copy is
   exactly the one the catalog references. *)
let read_ckpt_image t ~(part : Addr.partition) (desc : Catalog.partition_desc) k =
  let fallback reason =
    match t.archiver with
    | Some a -> (
        match Archive.latest_image a part with
        | Some image ->
            Trace.incr t.trace "media_recoveries";
            k (Some image)
        | None -> failwith ("Db: checkpoint image lost and not archived: " ^ reason))
    | None -> failwith ("Db: corrupt checkpoint image: " ^ reason)
  in
  if desc.Catalog.ckpt_page < 0 then k None
  else
    Mrdb_hw.Disk.read_track t.ckpt_disk ~first_page:desc.Catalog.ckpt_page
      ~pages:desc.Catalog.ckpt_page_count (fun data ->
        match Ckpt_image.decode data with
        | Ok image -> k (Some image)
        | Error e -> fallback e)

(* Restore one partition: checkpoint image and log stream are fetched in
   parallel (different disks), then records with seq > watermark are
   applied in original order. *)
let recover_partition_raw t v part k =
  let desc =
    match Catalog.partition_desc v.cat part with
    | Some d -> d
    | None -> failwith (Format.asprintf "Db: partition %a not catalogued" Addr.pp_partition part)
  in
  if desc.Catalog.resident then k ()
  else begin
    let image = ref None and image_done = ref false in
    let records = ref [] and records_done = ref false in
    read_ckpt_image t ~part desc (fun img ->
        image := img;
        image_done := true);
    Slt.records_for_recovery v.slt part (fun result ->
        (match result with
        | Ok rs -> records := rs
        | Error e -> failwith ("Db: log recovery failed: " ^ e));
        records_done := true);
    pump_until t (fun () -> !image_done && !records_done);
    let partition, watermark =
      match !image with
      | Some img ->
          if not (Addr.equal_partition img.Ckpt_image.part part) then
            failwith "Db: checkpoint image for wrong partition";
          (Partition.of_snapshot img.Ckpt_image.snapshot, img.Ckpt_image.watermark)
      | None ->
          ( Partition.create ~size:t.cfg.Config.partition_bytes
              ~segment:part.Addr.segment ~partition:part.Addr.partition,
            0 )
    in
    let max_seq = ref watermark in
    List.iter
      (fun (r : Log_record.t) ->
        if r.Log_record.seq > watermark then begin
          Part_op.apply partition r.Log_record.op;
          Trace.incr t.trace "recovery_records_applied"
        end;
        if r.Log_record.seq > !max_seq then max_seq := r.Log_record.seq)
      !records;
    Segment.install (segment_of t v part.Addr.segment) partition;
    Addr.Partition_table.replace v.seq part !max_seq;
    Catalog.set_resident v.cat part true;
    Trace.incr t.trace "partitions_recovered";
    k ()
  end

let ensure_partition t v part = recover_partition_raw t v part (fun () -> ())

let partitions_of_segment v seg_id =
  let cat_partitions rel =
    List.filter
      (fun (d : Catalog.partition_desc) -> d.Catalog.part.Addr.segment = seg_id)
      rel.Catalog.partitions
  in
  match Catalog.relation_of_segment v.cat seg_id with
  | Some rel -> cat_partitions rel
  | None -> []

let ensure_segment t v seg_id =
  List.iter
    (fun (d : Catalog.partition_desc) -> ensure_partition t v d.Catalog.part)
    (partitions_of_segment v seg_id)

(* -- relation runtimes ------------------------------------------------------ *)

let rt_of t v name =
  match Hashtbl.find_opt v.rels name with
  | Some rt -> rt
  | None -> (
      match Catalog.find_relation v.cat name with
      | None -> raise (Unknown_relation name)
      | Some desc ->
          let segment = segment_of t v desc.Catalog.rel_segment in
          let rt =
            {
              desc;
              relation =
                Relation.create ~id:desc.Catalog.rel_id ~name ~schema:desc.Catalog.schema
                  ~segment;
              index_insts = [];
              indices_attached = false;
            }
          in
          Hashtbl.add v.rels name rt;
          rt)

let attach_index t v (idx : Catalog.index_desc) =
  ensure_segment t v idx.Catalog.idx_segment;
  let segment = segment_of t v idx.Catalog.idx_segment in
  let inst =
    match idx.Catalog.kind with
    | Catalog.Ttree -> Tt (T_tree.attach ~segment)
    | Catalog.Lhash -> Lh (Linear_hash.attach ~segment)
  in
  Hashtbl.replace v.overlay_by_segment idx.Catalog.idx_segment inst;
  inst

let ensure_indices t v rt =
  if not rt.indices_attached then begin
    rt.index_insts <-
      List.map
        (fun idx ->
          match List.assq_opt idx rt.index_insts with
          | Some inst -> (idx, inst)
          | None -> (idx, attach_index t v idx))
        rt.desc.Catalog.indices;
    rt.indices_attached <- true
  end

let ensure_rel_resident t v rt =
  ensure_segment t v rt.desc.Catalog.rel_segment;
  ensure_indices t v rt

let ensure_relation t name =
  let v = vol t in
  ensure_rel_resident t v (rt_of t v name)

(* -- index maintenance ------------------------------------------------------- *)

let inst_insert inst ~log key addr =
  match inst with
  | Tt tree -> T_tree.insert tree ~log key addr
  | Lh h -> Linear_hash.insert h ~log key addr

let inst_delete inst ~log key addr =
  match inst with
  | Tt tree -> ignore (T_tree.delete tree ~log key addr)
  | Lh h -> ignore (Linear_hash.delete h ~log key addr)

let index_insert_all t v rt ~log tuple addr =
  ignore t;
  ignore v;
  List.iter
    (fun ((idx : Catalog.index_desc), inst) ->
      inst_insert inst ~log (Tuple.field tuple idx.Catalog.key_column) addr)
    rt.index_insts

let index_delete_all t v rt ~log tuple addr =
  ignore t;
  ignore v;
  List.iter
    (fun ((idx : Catalog.index_desc), inst) ->
      inst_delete inst ~log (Tuple.field tuple idx.Catalog.key_column) addr)
    rt.index_insts

(* -- DDL ---------------------------------------------------------------------- *)

let create_relation t ~name ~schema =
  let v = vol t in
  with_system_txn t v (fun sink ->
      let desc, seg_id = Catalog.create_relation v.cat ~log:sink ~name ~schema in
      ignore (segment_of t v seg_id);
      let rt =
        {
          desc;
          relation = Relation.create ~id:desc.Catalog.rel_id ~name ~schema
              ~segment:(segment_of t v seg_id);
          index_insts = [];
          indices_attached = true;
        }
      in
      Hashtbl.add v.rels name rt);
  update_wellknown t (vol t);
  Trace.incr t.trace "relations_created"

let create_index t ~rel ~name ~kind ~key_column =
  let v = vol t in
  let rt = rt_of t v rel in
  ensure_rel_resident t v rt;
  let key_column_idx =
    try Schema.column_index rt.desc.Catalog.schema key_column
    with Not_found -> invalid_arg ("Db.create_index: unknown column " ^ key_column)
  in
  with_system_txn t v (fun sink ->
      let idx, seg_id =
        Catalog.add_index v.cat ~log:sink ~rel:rt.desc ~name ~kind
          ~key_column:key_column_idx
      in
      let segment = segment_of t v seg_id in
      let key_type = Schema.column_type rt.desc.Catalog.schema key_column_idx in
      let inst =
        match kind with
        | Catalog.Ttree ->
            Tt
              (T_tree.create ~segment ~log:sink ~key_type
                 ~max_items:t.cfg.Config.ttree_max_items ())
        | Catalog.Lhash ->
            Lh
              (Linear_hash.create ~segment ~log:sink ~key_type
                 ~node_capacity:t.cfg.Config.lhash_node_capacity ())
      in
      Hashtbl.replace v.overlay_by_segment seg_id inst;
      (* Backfill from existing tuples. *)
      Relation.iter
        (fun addr tuple ->
          inst_insert inst ~log:sink (Tuple.field tuple key_column_idx) addr)
        rt.relation;
      rt.index_insts <- rt.index_insts @ [ (idx, inst) ]);
  update_wellknown t (vol t);
  Trace.incr t.trace "indices_created"

let drop_relation t ~name =
  let v = vol t in
  let desc =
    match Catalog.find_relation v.cat name with
    | Some d -> d
    | None -> raise (Unknown_relation name)
  in
  (* Take an exclusive lock so no live transaction holds the relation. *)
  let tx = Txn_core.Manager.begin_txn v.txn_mgr in
  (match
     Lock_mgr.acquire v.lock_mgr ~txn:(Txn_core.id tx)
       (Lock_mgr.Relation desc.Catalog.rel_id) Lock_mgr.X
   with
  | Lock_mgr.Granted -> ()
  | Lock_mgr.Blocked | Lock_mgr.Deadlock ->
      ignore (Lock_mgr.release_all v.lock_mgr ~txn:(Txn_core.id tx));
      Txn_core.Manager.abort v.txn_mgr tx;
      raise (Aborted "drop_relation: relation is in use"));
  let partitions = desc.Catalog.partitions in
  (* Atomic step: catalog deletions commit in one system transaction. *)
  let sink part ~redo ~undo:_ = log_redo_raw t v ~txn_id:(Txn_core.id tx) part redo in
  Catalog.drop_relation v.cat ~log:sink desc;
  Slb.commit v.slb ~txn_id:(Txn_core.id tx);
  Txn_core.Manager.commit v.txn_mgr tx;
  ignore (Lock_mgr.release_all v.lock_mgr ~txn:(Txn_core.id tx));
  drain t v;
  (* Resource reclamation (idempotent; re-done by recovery if we crash
     mid-way): bins, checkpoint-disk runs, memory, runtimes. *)
  List.iter
    (fun (d : Catalog.partition_desc) ->
      Ckpt_queue.cancel v.ckpt_q d.Catalog.part;
      Slt.drop_partition v.slt d.Catalog.part;
      if d.Catalog.ckpt_page >= 0 then
        Disk_map.release v.disk_map ~page:d.Catalog.ckpt_page
          ~pages:d.Catalog.ckpt_page_count;
      Addr.Partition_table.remove v.seq d.Catalog.part)
    partitions;
  Hashtbl.remove v.segments desc.Catalog.rel_segment;
  List.iter
    (fun (i : Catalog.index_desc) ->
      Hashtbl.remove v.segments i.Catalog.idx_segment;
      Hashtbl.remove v.overlay_by_segment i.Catalog.idx_segment)
    desc.Catalog.indices;
  Hashtbl.remove v.rels name;
  Trace.incr t.trace "relations_dropped"

let relations t =
  let v = vol t in
  List.map (fun r -> r.Catalog.rel_name) (Catalog.relations v.cat)

(* -- checkpointing -------------------------------------------------------------- *)

let page_bytes t = (Stable_layout.config t.layout).Stable_layout.log_page_bytes

let run_checkpoint t v (part : Addr.partition) =
  match Catalog.partition_desc v.cat part with
  | None ->
      (* Partition vanished (deallocated); nothing to do. *)
      Slt.checkpoint_finished v.slt part ~watermark:max_int;
      `Done
  | Some desc when not desc.Catalog.resident ->
      (* Not in memory: its durable state is already its recovery source —
         but its bin may hold records the durable image lacks; leave them
         (watermark 0 never resets a non-empty bin). *)
      Slt.checkpoint_finished v.slt part ~watermark:0;
      `Done
  | Some desc -> (
      let rel =
        match Catalog.relation_of_segment v.cat part.Addr.segment with
        | Some r -> r
        | None -> failwith "Db: checkpoint of unowned segment"
      in
      let tx = Txn_core.Manager.begin_txn v.txn_mgr in
      match
        Lock_mgr.acquire v.lock_mgr ~txn:(Txn_core.id tx)
          (Lock_mgr.Relation rel.Catalog.rel_id) Lock_mgr.S
      with
      | Lock_mgr.Blocked | Lock_mgr.Deadlock ->
          ignore (Lock_mgr.release_all v.lock_mgr ~txn:(Txn_core.id tx));
          Txn_core.Manager.abort v.txn_mgr tx;
          `Deferred
      | Lock_mgr.Granted ->
          (* Copy at memory speed, take the bin cut atomically with the
             watermark (no simulated time passes in between), then drop the
             lock immediately. *)
          let p = Segment.find_exn (segment_of t v part.Addr.segment) part.Addr.partition in
          let snapshot = Partition.snapshot p in
          let watermark =
            match Addr.Partition_table.find_opt v.seq part with
            | Some c -> c
            | None -> 0
          in
          (match Slt.begin_checkpoint v.slt part with
          | `Cut | `Nothing_to_cut -> ()
          | `Shadow_busy ->
              (* A cut from a crash-interrupted checkpoint is still parked;
                 proceed without a new cut — checkpoint_finished falls back
                 to the watermark rule. *)
              Trace.incr t.trace "ckpt_shadow_busy");
          ignore (Lock_mgr.release_all v.lock_mgr ~txn:(Txn_core.id tx));
          let image = Ckpt_image.encode ~page_bytes:(page_bytes t)
              { Ckpt_image.part; watermark; snapshot }
          in
          let pages = Bytes.length image / page_bytes t in
          let old =
            if desc.Catalog.ckpt_page >= 0 then
              Some (desc.Catalog.ckpt_page, desc.Catalog.ckpt_page_count)
            else None
          in
          let first_page =
            match Disk_map.allocate v.disk_map ~pages with
            | Some p -> p
            | None -> failwith "Db: checkpoint disk full"
          in
          (* §2.4 step 5: log the catalog/disk-map updates before the
             partition is written. *)
          let sink part' ~redo ~undo:_ =
            log_redo_raw t v ~txn_id:(Txn_core.id tx) part' redo
          in
          Catalog.set_ckpt_location v.cat ~log:sink part ~page:first_page ~pages;
          let durable = ref false in
          Mrdb_hw.Disk.write_track t.ckpt_disk ~first_page image (fun () ->
              durable := true);
          pump_until t (fun () -> !durable);
          (match t.archiver with
          | Some a ->
              Archive.on_ckpt_image a
                { Ckpt_image.part; watermark; snapshot }
                ~page_bytes:(page_bytes t)
          | None -> ());
          (* Commit installs the new location atomically. *)
          Slb.commit v.slb ~txn_id:(Txn_core.id tx);
          Txn_core.Manager.commit v.txn_mgr tx;
          drain t v;
          (match old with
          | Some (p0, n) -> Disk_map.release v.disk_map ~page:p0 ~pages:n
          | None -> ());
          if part.Addr.segment = Catalog.catalog_segment_id then update_wellknown t v;
          Slt.checkpoint_finished v.slt part ~watermark;
          Trace.incr t.trace "checkpoints";
          `Done)

let process_checkpoints t =
  let v = vol t in
  let completed = ref 0 in
  let continue = ref true in
  while !continue do
    match Ckpt_queue.next_requested v.ckpt_q with
    | None -> continue := false
    | Some entry -> (
        match run_checkpoint t v entry.Ckpt_queue.part with
        | `Done ->
            Ckpt_queue.finish v.ckpt_q entry.Ckpt_queue.part;
            incr completed
        | `Deferred ->
            Ckpt_queue.defer v.ckpt_q entry.Ckpt_queue.part;
            continue := false)
  done;
  !completed

let pending_checkpoints t = Ckpt_queue.pending (vol t).ckpt_q

let checkpoint_partition t part =
  let v = vol t in
  match run_checkpoint t v part with
  | `Done -> ()
  | `Deferred -> raise (Aborted "checkpoint deferred: relation locked")

let checkpoint_all t =
  let v = vol t in
  List.iter (fun part -> checkpoint_partition t part) (Slt.active_partitions v.slt);
  ignore (process_checkpoints t)

(* -- commit/abort ------------------------------------------------------------- *)

let maybe_auto_checkpoint t =
  if t.cfg.Config.auto_checkpoint then ignore (process_checkpoints t)

let finish_commit t v tx =
  Slb.commit v.slb ~txn_id:(Txn_core.id tx);
  Txn_core.Manager.commit v.txn_mgr tx;
  ignore (Lock_mgr.release_all v.lock_mgr ~txn:(Txn_core.id tx));
  drain t v;
  Trace.incr t.trace "commits"

let flush_group t =
  let v = vol t in
  while not (Queue.is_empty v.group) do
    let tx = Queue.take v.group in
    Slb.commit v.slb ~txn_id:(Txn_core.id tx);
    Txn_core.Manager.finalize_commit v.txn_mgr tx;
    drain t v;
    Trace.incr t.trace "commits";
    Trace.incr t.trace "group_commits"
  done;
  maybe_auto_checkpoint t

let commit t tx =
  let v = vol t in
  match t.cfg.Config.commit_mode with
  | Config.Instant ->
      finish_commit t v tx;
      maybe_auto_checkpoint t
  | Config.Group n ->
      (* Precommit: locks released, log records remain in stable memory
         awaiting the group's official commit. *)
      Txn_core.Manager.precommit v.txn_mgr tx;
      ignore (Lock_mgr.release_all v.lock_mgr ~txn:(Txn_core.id tx));
      Queue.add tx v.group;
      Trace.incr t.trace "precommits";
      if Queue.length v.group >= n then flush_group t
  | Config.Disk_force ->
      finish_commit t v tx;
      (* Conventional WAL: force the log to disk and wait. *)
      List.iter (fun part -> Slt.flush_partition v.slt part) (Slt.active_partitions v.slt);
      pump_until t (fun () -> Slt.pending_page_writes v.slt = 0);
      Trace.incr t.trace "log_forces";
      maybe_auto_checkpoint t

let begin_txn ?(declare = []) t =
  let v = vol t in
  (match t.cfg.Config.recovery_mode with
  | Config.Predeclare | Config.On_demand | Config.Full_reload ->
      List.iter (fun name -> ensure_relation t name) declare);
  Txn_core.Manager.begin_txn v.txn_mgr

let abort t tx =
  let v = vol t in
  do_abort t v tx

let with_txn t f =
  let tx = begin_txn t in
  match f tx with
  | result ->
      commit t tx;
      result
  | exception e ->
      (match Txn_core.status tx with
      | Txn_core.Active -> abort t tx
      | Txn_core.Precommitted | Txn_core.Committed | Txn_core.Aborted -> ());
      raise e

(* -- DML ------------------------------------------------------------------------ *)

let insert t tx ~rel tuple =
  let v = vol t in
  let rt = rt_of t v rel in
  if rt.desc.Catalog.indices <> [] then ensure_rel_resident t v rt;
  acquire t v tx (Lock_mgr.Relation rt.desc.Catalog.rel_id) Lock_mgr.IX;
  let addr = Relation.insert rt.relation ~log:(user_sink t v tx) tuple in
  acquire t v tx (Lock_mgr.Entity addr) Lock_mgr.X;
  index_insert_all t v rt ~log:(user_sink t v tx) tuple addr;
  addr

let read t tx ~rel addr =
  let v = vol t in
  let rt = rt_of t v rel in
  ensure_partition t v (Addr.partition_of addr);
  acquire t v tx (Lock_mgr.Relation rt.desc.Catalog.rel_id) Lock_mgr.IS;
  acquire t v tx (Lock_mgr.Entity addr) Lock_mgr.S;
  Relation.read rt.relation addr

let update t tx ~rel addr tuple =
  let v = vol t in
  let rt = rt_of t v rel in
  ensure_partition t v (Addr.partition_of addr);
  if rt.desc.Catalog.indices <> [] then ensure_rel_resident t v rt;
  acquire t v tx (Lock_mgr.Relation rt.desc.Catalog.rel_id) Lock_mgr.IX;
  acquire t v tx (Lock_mgr.Entity addr) Lock_mgr.X;
  match Relation.read rt.relation addr with
  | None -> raise Not_found
  | Some old_tuple ->
      let sink = user_sink t v tx in
      let addr' = Relation.update rt.relation ~log:sink addr tuple in
      (* Refresh index entries for changed keys (and for relocation). *)
      List.iter
        (fun ((idx : Catalog.index_desc), inst) ->
          let old_key = Tuple.field old_tuple idx.Catalog.key_column in
          let new_key = Tuple.field tuple idx.Catalog.key_column in
          if (not (Schema.equal_value old_key new_key)) || not (Addr.equal addr addr')
          then begin
            inst_delete inst ~log:sink old_key addr;
            inst_insert inst ~log:sink new_key addr'
          end)
        rt.index_insts;
      if not (Addr.equal addr addr') then
        acquire t v tx (Lock_mgr.Entity addr') Lock_mgr.X;
      addr'

let update_field t tx ~rel addr ~column value =
  let v = vol t in
  let rt = rt_of t v rel in
  ensure_partition t v (Addr.partition_of addr);
  let col =
    try Schema.column_index rt.desc.Catalog.schema column
    with Not_found -> invalid_arg ("Db.update_field: unknown column " ^ column)
  in
  acquire t v tx (Lock_mgr.Relation rt.desc.Catalog.rel_id) Lock_mgr.IX;
  acquire t v tx (Lock_mgr.Entity addr) Lock_mgr.X;
  match Relation.read rt.relation addr with
  | None -> raise Not_found
  | Some old_tuple ->
      update t tx ~rel addr (Tuple.set_field rt.desc.Catalog.schema old_tuple col value)

let delete t tx ~rel addr =
  let v = vol t in
  let rt = rt_of t v rel in
  ensure_partition t v (Addr.partition_of addr);
  if rt.desc.Catalog.indices <> [] then ensure_rel_resident t v rt;
  acquire t v tx (Lock_mgr.Relation rt.desc.Catalog.rel_id) Lock_mgr.IX;
  acquire t v tx (Lock_mgr.Entity addr) Lock_mgr.X;
  let sink = user_sink t v tx in
  let old_tuple = Relation.delete rt.relation ~log:sink addr in
  index_delete_all t v rt ~log:sink old_tuple addr

let find_index rt name =
  match
    List.find_opt (fun ((i : Catalog.index_desc), _) -> i.Catalog.idx_name = name)
      rt.index_insts
  with
  | Some pair -> pair
  | None -> raise (Unknown_index name)

let lookup t tx ~rel ~index key =
  let v = vol t in
  let rt = rt_of t v rel in
  ensure_indices t v rt;
  acquire t v tx (Lock_mgr.Relation rt.desc.Catalog.rel_id) Lock_mgr.IS;
  let _, inst = find_index rt index in
  let addrs =
    match inst with Tt tree -> T_tree.lookup tree key | Lh h -> Linear_hash.lookup h key
  in
  List.map
    (fun addr ->
      ensure_partition t v (Addr.partition_of addr);
      acquire t v tx (Lock_mgr.Entity addr) Lock_mgr.S;
      match Relation.read rt.relation addr with
      | Some tuple -> (addr, tuple)
      | None -> failwith "Db.lookup: dangling index entry")
    addrs

let range t tx ~rel ~index ~lo ~hi =
  let v = vol t in
  let rt = rt_of t v rel in
  ensure_indices t v rt;
  acquire t v tx (Lock_mgr.Relation rt.desc.Catalog.rel_id) Lock_mgr.S;
  match find_index rt index with
  | _, Tt tree -> T_tree.range tree ~lo ~hi
  | _, Lh _ -> invalid_arg "Db.range: hash indices do not support range scans"

let scan t tx ~rel =
  let v = vol t in
  let rt = rt_of t v rel in
  ensure_rel_resident t v rt;
  acquire t v tx (Lock_mgr.Relation rt.desc.Catalog.rel_id) Lock_mgr.S;
  List.rev (Relation.fold (fun acc addr tuple -> (addr, tuple) :: acc) [] rt.relation)

let cardinality t ~rel =
  let v = vol t in
  let rt = rt_of t v rel in
  ensure_segment t v rt.desc.Catalog.rel_segment;
  Relation.cardinality rt.relation

(* -- crash & recovery ------------------------------------------------------------ *)

let is_crashed t = t.vol = None

let crash t =
  if t.vol <> None then begin
    Sim.clear t.sim;
    Mrdb_hw.Disk.crash_queue (Mrdb_hw.Duplex.primary (Log_disk.duplex t.log_disk));
    Mrdb_hw.Disk.crash_queue (Mrdb_hw.Duplex.mirror (Log_disk.duplex t.log_disk));
    Mrdb_hw.Disk.crash_queue t.ckpt_disk;
    Mrdb_hw.Volatile.Epoch.crash t.epoch;
    t.vol <- None;
    Trace.incr t.trace "crashes"
  end

let mk_vol t ~slb ~slt ~cat ~ckpt_q =
  let segments = Hashtbl.create 16 in
  let overlay_by_segment = Hashtbl.create 16 in
  let undo =
    Undo_space.create ~block_bytes:t.cfg.Config.undo_block_bytes
      ~block_count:t.cfg.Config.undo_block_count t.epoch
  in
  let txn_mgr =
    Txn_core.Manager.create ~undo
      ~resolve_partition:(fun (part : Addr.partition) ->
        match Hashtbl.find_opt segments part.Addr.segment with
        | Some s -> Segment.find_exn s part.Addr.partition
        | None -> raise Not_found)
      ~invalidate_overlay:(fun seg ->
        match Hashtbl.find_opt overlay_by_segment seg with
        | Some (Tt tree) -> T_tree.invalidate_cache tree
        | Some (Lh h) -> Linear_hash.invalidate_cache h
        | None -> ())
      ()
  in
  {
    slb;
    slt;
    cat;
    segments;
    rels = Hashtbl.create 16;
    lock_mgr = Lock_mgr.create ();
    txn_mgr;
    disk_map = Disk_map.create ~capacity_pages:t.cfg.Config.ckpt_disk_pages;
    ckpt_q;
    seq = Addr.Partition_table.create 256;
    group = Queue.create ();
    overlay_by_segment;
  }

let all_partition_descs v =
  let acc = ref [] in
  Catalog.iter_relations (fun rel -> acc := rel.Catalog.partitions @ !acc) v.cat;
  !acc

let resident_fraction t =
  let v = vol t in
  let descs = all_partition_descs v in
  if descs = [] then 1.0
  else
    float_of_int (List.length (List.filter (fun d -> d.Catalog.resident) descs))
    /. float_of_int (List.length descs)

let background_recovery_step t =
  let v = vol t in
  let next =
    List.find_opt (fun (d : Catalog.partition_desc) -> not d.Catalog.resident)
      (List.sort
         (fun (a : Catalog.partition_desc) b ->
           Addr.compare_partition a.Catalog.part b.Catalog.part)
         (all_partition_descs v))
  in
  match next with
  | None -> false
  | Some d ->
      ensure_partition t v d.Catalog.part;
      true

let recover_everything t =
  while background_recovery_step t do () done

let all_partition_descs_of_cat cat =
  let acc = ref [] in
  Catalog.iter_relations (fun rel -> acc := rel.Catalog.partitions @ !acc) cat;
  !acc

let recover ?mode t =
  if t.vol <> None then invalid_arg "Db.recover: not crashed";
  let mode = Option.value mode ~default:t.cfg.Config.recovery_mode in
  let started = Sim.now t.sim in
  (* Re-attach the stable layout and recovery structures. *)
  t.layout <- Stable_layout.attach t.cfg.Config.stable t.stable_mem;
  let slb = Slb.recover t.layout in
  let ckpt_q = Ckpt_queue.create () in
  let ckpt_q_ref = ref ckpt_q in
  let slt =
    Slt.recover ~layout:t.layout ~log_disk:t.log_disk ~n_update:t.cfg.Config.n_update
      ?age_grace_pages:t.cfg.Config.age_grace_pages
      ~on_checkpoint_request:(fun part trig ->
        let reason =
          match trig with
          | Slt.Update_count ->
              Trace.incr t.trace "ckpt_req_update_count";
              Ckpt_queue.Update_count
          | Slt.Age ->
              Trace.incr t.trace "ckpt_req_age";
              Ckpt_queue.Age
        in
        ignore (Ckpt_queue.request !ckpt_q_ref part reason))
      ()
  in
  (* Sort any committed-but-undrained records into bins. *)
  ignore (Slb.drain slb ~f:(fun ~txn_id:_ records -> Slt.accept_all slt records));
  (* Bootstrap the catalogs from the well-known area. *)
  let wk_entries = match Wellknown.load t.layout with Some e -> e | None -> [] in
  let cat_segment =
    Segment.create ~id:Catalog.catalog_segment_id
      ~partition_bytes:t.cfg.Config.partition_bytes
  in
  let catalog_seq = ref [] in
  List.iter
    (fun (e : Wellknown.entry) ->
      (* Inline per-partition restore (catalog partitions only): image ∥ log. *)
      let image = ref None and image_done = ref false in
      if e.Wellknown.ckpt_page < 0 then image_done := true
      else
        Mrdb_hw.Disk.read_track t.ckpt_disk ~first_page:e.Wellknown.ckpt_page
          ~pages:e.Wellknown.pages (fun data ->
            (match Ckpt_image.decode data with
            | Ok img -> image := Some img
            | Error msg -> (
                (* Checkpoint-disk media failure: fall back to the archive. *)
                match t.archiver with
                | Some a -> (
                    match Archive.latest_image a e.Wellknown.part with
                    | Some img ->
                        Trace.incr t.trace "media_recoveries";
                        image := Some img
                    | None ->
                        failwith ("Db.recover: catalog image lost, not archived: " ^ msg))
                | None -> failwith ("Db.recover: corrupt catalog image: " ^ msg)));
            image_done := true);
      let records = ref [] and records_done = ref false in
      Slt.records_for_recovery slt e.Wellknown.part (fun result ->
          (match result with
          | Ok rs -> records := rs
          | Error msg -> failwith ("Db.recover: catalog log: " ^ msg));
          records_done := true);
      pump_until t (fun () -> !image_done && !records_done);
      let partition, watermark =
        match !image with
        | Some img -> (Partition.of_snapshot img.Ckpt_image.snapshot, img.Ckpt_image.watermark)
        | None ->
            ( Partition.create ~size:t.cfg.Config.partition_bytes
                ~segment:Catalog.catalog_segment_id
                ~partition:e.Wellknown.part.Addr.partition,
              0 )
      in
      let max_seq = ref watermark in
      List.iter
        (fun (r : Log_record.t) ->
          if r.Log_record.seq > watermark then Part_op.apply partition r.Log_record.op;
          if r.Log_record.seq > !max_seq then max_seq := r.Log_record.seq)
        !records;
      catalog_seq := (e.Wellknown.part, !max_seq) :: !catalog_seq;
      Segment.install cat_segment partition)
    wk_entries;
  let cat = Catalog.decode_from_segment cat_segment in
  let v = mk_vol t ~slb ~slt ~cat ~ckpt_q in
  ckpt_q_ref := v.ckpt_q;
  Hashtbl.replace v.segments Catalog.catalog_segment_id cat_segment;
  (* Catalog partition sequence counters: watermark + replayed records. *)
  List.iter
    (fun (part, max_seq) -> Addr.Partition_table.replace v.seq part max_seq)
    !catalog_seq;
  (* Rebuild the checkpoint-disk allocation map from the catalog. *)
  Disk_map.rebuild v.disk_map
    (List.filter_map
       (fun (d : Catalog.partition_desc) ->
         if d.Catalog.ckpt_page >= 0 then Some (d.Catalog.ckpt_page, d.Catalog.ckpt_page_count)
         else None)
       (all_partition_descs_of_cat cat));
  (* Orphan bins: a crash between a drop_relation's catalog commit and its
     resource reclamation leaves bins whose partitions no longer exist;
     finish the reclamation now. *)
  List.iter
    (fun part ->
      if Catalog.partition_desc cat part = None then Slt.drop_partition slt part)
    (Slt.active_partitions slt);
  t.vol <- Some v;
  Trace.incr t.trace "recoveries";
  Trace.record t.trace "catalog_recovery_us" (Sim.now t.sim -. started);
  match mode with
  | Config.Full_reload -> recover_everything t
  | Config.On_demand | Config.Predeclare -> ()

(* -- construction ------------------------------------------------------------------ *)

let create ?(config = Config.default) () =
  Config.validate config;
  let sim = Sim.create () in
  let stable_mem =
    Mrdb_hw.Stable_mem.create
      ~size:(Stable_layout.required_bytes config.Config.stable)
      ()
  in
  let layout = Stable_layout.attach config.Config.stable stable_mem in
  let log_disk =
    Log_disk.create sim ~layout ~window_pages:config.Config.log_window_pages ()
  in
  let page_bytes = config.Config.stable.Stable_layout.log_page_bytes in
  let ckpt_disk =
    Mrdb_hw.Disk.create ~name:"ckptdisk" sim
      ~params:(Mrdb_hw.Disk.default_ckpt_params ~page_bytes)
      ~capacity_pages:config.Config.ckpt_disk_pages
  in
  let archiver =
    if config.Config.archive then begin
      let a = Archive.create () in
      Log_disk.set_tap log_disk (fun ~lsn image -> Archive.on_log_page a ~lsn image);
      Some a
    end
    else None
  in
  let t =
    {
      cfg = config;
      sim;
      main_cpu = Cpu.create ~name:"main" sim ~mips:config.Config.main_cpu_mips;
      recovery_cpu = Cpu.create ~name:"recovery" sim ~mips:config.Config.recovery_cpu_mips;
      stable_mem;
      epoch = Mrdb_hw.Volatile.Epoch.create ();
      layout;
      log_disk;
      ckpt_disk;
      archiver;
      trace = Trace.create ();
      vol = None;
    }
  in
  let slb = Slb.create layout in
  let ckpt_q = Ckpt_queue.create () in
  let ckpt_q_ref = ref ckpt_q in
  let slt =
    Slt.create ~layout ~log_disk ~n_update:config.Config.n_update
      ?age_grace_pages:config.Config.age_grace_pages
      ~on_checkpoint_request:(fun part trig ->
        let reason =
          match trig with
          | Slt.Update_count ->
              Trace.incr t.trace "ckpt_req_update_count";
              Ckpt_queue.Update_count
          | Slt.Age ->
              Trace.incr t.trace "ckpt_req_age";
              Ckpt_queue.Age
        in
        ignore (Ckpt_queue.request !ckpt_q_ref part reason))
      ()
  in
  (* Bootstrap the catalog, buffering its physical ops so they can be
     logged once the volatile plumbing exists. *)
  let buffered = ref [] in
  let boot_sink part ~redo ~undo:_ = buffered := (part, redo) :: !buffered in
  let cat = Catalog.create ~partition_bytes:config.Config.partition_bytes ~log:boot_sink in
  let v = mk_vol t ~slb ~slt ~cat ~ckpt_q in
  ckpt_q_ref := v.ckpt_q;
  Hashtbl.replace v.segments Catalog.catalog_segment_id (Catalog.segment cat);
  t.vol <- Some v;
  (* Log the buffered bootstrap ops under one system transaction. *)
  let tx = Txn_core.Manager.begin_txn v.txn_mgr in
  List.iter
    (fun (part, redo) -> log_redo_raw t v ~txn_id:(Txn_core.id tx) part redo)
    (List.rev !buffered);
  Slb.commit v.slb ~txn_id:(Txn_core.id tx);
  Txn_core.Manager.commit v.txn_mgr tx;
  drain t v;
  update_wellknown t v;
  t

(* -- introspection ------------------------------------------------------------------ *)

let main_cpu t = t.main_cpu
let recovery_cpu t = t.recovery_cpu
let slt t = (vol t).slt
let slb t = (vol t).slb
let log_disk t = t.log_disk
let ckpt_disk t = t.ckpt_disk
let catalog t = (vol t).cat
let archiver t = t.archiver

(* Media failure of the checkpoint disk: every image is gone; a fresh
   (blank) replacement drive takes its place.  The archive keeps recovery
   possible; the catalog's locations become stale pointers into the blank
   drive, which read_ckpt_image detects and routes to the tape. *)
let fail_checkpoint_disk t =
  t.ckpt_disk <-
    Mrdb_hw.Disk.create ~name:"ckptdisk-replacement" t.sim
      ~params:(Mrdb_hw.Disk.params t.ckpt_disk)
      ~capacity_pages:(Mrdb_hw.Disk.capacity_pages t.ckpt_disk);
  Trace.incr t.trace "ckpt_disk_failures"

let partition_of_addr t ~rel addr =
  ignore t;
  ignore rel;
  Addr.partition_of addr

let relation_partitions t ~rel =
  let v = vol t in
  match Catalog.find_relation v.cat rel with
  | None -> raise (Unknown_relation rel)
  | Some desc ->
      List.filter_map
        (fun (d : Catalog.partition_desc) ->
          if d.Catalog.part.Addr.segment = desc.Catalog.rel_segment then
            Some d.Catalog.part
          else None)
        desc.Catalog.partitions
