open Mrdb_storage

type reason = Update_count | Age
type status = Requested | In_progress | Finished

type entry = {
  part : Addr.partition;
  reason : reason;
  mutable status : status;
}

type t = { capacity : int; mutable entries : entry list (* FIFO *) }

let create ?(capacity = 64) () = { capacity; entries = [] }

let is_queued t part =
  List.exists
    (fun e -> Addr.equal_partition e.part part && e.status <> Finished)
    t.entries

let pending t =
  List.length (List.filter (fun e -> e.status <> Finished) t.entries)

let request t part reason =
  if pending t >= t.capacity || is_queued t part then false
  else begin
    t.entries <- t.entries @ [ { part; reason; status = Requested } ];
    true
  end

let next_requested t =
  match List.find_opt (fun e -> e.status = Requested) t.entries with
  | None -> None
  | Some e ->
      e.status <- In_progress;
      Some e

let defer t part =
  List.iter
    (fun e ->
      if Addr.equal_partition e.part part && e.status = In_progress then
        e.status <- Requested)
    t.entries

let finish t part =
  match
    List.find_opt
      (fun e -> Addr.equal_partition e.part part && e.status = In_progress)
      t.entries
  with
  | None -> raise Not_found
  | Some e ->
      e.status <- Finished;
      t.entries <- List.filter (fun e' -> e' != e) t.entries

let cancel t part =
  t.entries <-
    List.filter (fun e -> not (Addr.equal_partition e.part part)) t.entries
