(** Checkpoint request communication buffer.

    "The recovery CPU issues a checkpoint request containing a partition
    address and a status flag in the Stable Log Buffer ... initially this
    flag is in the request state; it changes to the in-progress state while
    the checkpoint is running, and it finally reaches the finished state
    after the checkpoint transaction commits."

    The main CPU polls this queue between transactions.  Only the catalog
    install and the sequence watermark are correctness-critical across a
    crash (both are stable elsewhere); the queue itself is rebuilt by the
    triggers re-firing, so it is kept as an ordinary bounded structure. *)

open Mrdb_storage

type reason = Update_count | Age

type status = Requested | In_progress | Finished

type entry = {
  part : Addr.partition;
  reason : reason;
  mutable status : status;
}

type t

val create : ?capacity:int -> unit -> t

val request : t -> Addr.partition -> reason -> bool
(** Enqueue a request; false when the queue is full or the partition is
    already queued (not yet finished). *)

val next_requested : t -> entry option
(** Oldest entry still in [Requested] state, marking it [In_progress]. *)

val defer : t -> Addr.partition -> unit
(** Put an in-progress entry back to [Requested] (the checkpoint could not
    get its relation read lock; retry on the next poll). *)

val finish : t -> Addr.partition -> unit
(** Mark the partition's in-progress entry [Finished] and retire it.
    @raise Not_found when the partition has no in-progress entry. *)

val cancel : t -> Addr.partition -> unit
(** Drop any entry for the partition (e.g. partition deallocated). *)

val pending : t -> int
(** Entries not yet finished. *)

val is_queued : t -> Addr.partition -> bool
