(** Checkpoint-disk allocation map with pseudo-circular allocation.

    "Checkpoint images are simply written to the first available location
    on the checkpoint disks ... the disks holding partition checkpoint
    images are organized in a pseudo-circular queue.  Frequently updated
    partitions will periodically get written to new checkpoint disk
    locations, but read-only or infrequently updated partitions may stay in
    one location for a long time.  (We use a pseudo-circular queue rather
    than a real circular queue so that partitions that are rarely
    checkpointed don't move and are skipped over as the head of the queue
    passes by.)  New checkpoint copies of partitions never overwrite old
    copies."

    The map tracks page runs (a partition image occupies a contiguous run).
    The state is {e derivable}: at recovery it is rebuilt from the
    catalog's checkpoint locations, so it needs no stable storage of its
    own. *)

type t

val create : capacity_pages:int -> t

val capacity_pages : t -> int
val free_pages : t -> int
val used_pages : t -> int
val head : t -> int
(** Current scan position of the pseudo-circular queue. *)

val allocate : t -> pages:int -> int option
(** First free run of [pages] contiguous pages at or after the head
    (wrapping, skipping over live images); advances the head past the
    allocation.  [None] when no such run exists. *)

val release : t -> page:int -> pages:int -> unit
(** Free a run (the old image, after the new one is installed).
    @raise Invalid_argument when any page in the run is not allocated. *)

val mark_used : t -> page:int -> pages:int -> unit
(** Recovery-time rebuild: mark a run as live.
    @raise Invalid_argument when any page is already used. *)

val is_used : t -> page:int -> bool

val rebuild : t -> (int * int) list -> unit
(** Clear and re-mark from (page, pages) runs — from catalog descriptors. *)
