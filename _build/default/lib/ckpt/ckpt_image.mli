(** Checkpoint image codec.

    A partition's checkpoint copy as stored on the checkpoint disk: the
    partition's byte snapshot together with its {e sequence watermark} (the
    per-partition log-record sequence current when the copy was taken,
    under the checkpoint's relation read lock).  Recovery applies only log
    records with seq > watermark, making replay idempotent across crashes
    that interleave with the checkpoint pipeline.

    Images are padded to whole disk pages ("partitions are written in whole
    tracks") and carry a CRC. *)

open Mrdb_storage

type t = {
  part : Addr.partition;
  watermark : int;
  snapshot : bytes; (** {!Partition.snapshot} image *)
}

val encode : page_bytes:int -> t -> bytes
(** Page-multiple image ready for a track write. *)

val pages_needed : page_bytes:int -> snapshot_bytes:int -> int

val decode : bytes -> (t, string) result
(** Verify magic + CRC; tolerate trailing page padding. *)
