lib/ckpt/ckpt_queue.mli: Addr Mrdb_storage
