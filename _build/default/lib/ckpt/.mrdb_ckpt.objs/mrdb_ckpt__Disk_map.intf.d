lib/ckpt/disk_map.mli:
