lib/ckpt/disk_map.ml: List Mrdb_util Printf
