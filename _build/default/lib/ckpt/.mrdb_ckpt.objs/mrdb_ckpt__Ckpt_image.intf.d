lib/ckpt/ckpt_image.mli: Addr Mrdb_storage
