lib/ckpt/ckpt_image.ml: Addr Bytes Int64 Mrdb_storage Mrdb_util
