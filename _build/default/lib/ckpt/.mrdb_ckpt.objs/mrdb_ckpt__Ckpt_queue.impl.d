lib/ckpt/ckpt_queue.ml: Addr List Mrdb_storage
