lib/sim/sim.ml: Float List Mrdb_util
