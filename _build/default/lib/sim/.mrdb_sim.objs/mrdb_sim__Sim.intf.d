lib/sim/sim.mli:
