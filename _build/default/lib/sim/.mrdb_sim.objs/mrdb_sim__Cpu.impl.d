lib/sim/cpu.ml: Float Sim
