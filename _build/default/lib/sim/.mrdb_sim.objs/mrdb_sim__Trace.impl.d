lib/sim/trace.ml: Format Hashtbl List Mrdb_util Stdlib String
