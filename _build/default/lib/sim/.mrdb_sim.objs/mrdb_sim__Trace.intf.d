lib/sim/trace.mli: Format Mrdb_util
