(** Simulated processor with an instruction-cost model.

    The paper's analysis (§3.1) charges every recovery operation in
    {e instructions} against a 1-MIPS dedicated processor and every
    stable-memory reference at ~1 µs.  This module turns instruction
    budgets into simulated busy time on a serially-occupied CPU.

    A CPU executes work items in FIFO order; [execute] enqueues a batch of
    instructions and fires its continuation when the batch retires. *)

type t

val create : ?name:string -> Sim.t -> mips:float -> t
(** [create sim ~mips] — [mips] is millions of instructions per second;
    1.0 reproduces the paper's recovery CPU. *)

val name : t -> string
val mips : t -> float

val seconds_for : t -> int -> float
(** Wall-clock seconds a batch of N instructions takes in isolation. *)

val execute : t -> instructions:int -> (unit -> unit) -> unit
(** Enqueue a batch; the continuation runs at completion time. *)

val execute_after : t -> delay:float -> instructions:int -> (unit -> unit) -> unit
(** Enqueue a batch that only becomes eligible [delay] µs from now. *)

val busy_until : t -> float
(** Simulated time at which all currently queued work retires. *)

val utilization : t -> float
(** Fraction of elapsed simulated time the CPU has spent busy (0 before any
    time passes). *)

val total_instructions : t -> int
(** Instructions retired or enqueued so far. *)
