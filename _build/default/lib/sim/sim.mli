(** Discrete-event simulation engine.

    Simulated time is in {e microseconds} as a float.  Events are thunks
    scheduled at absolute times; ties execute in scheduling order, so a
    simulation driven by a fixed [Rng] seed is fully deterministic.

    The engine underpins the paper's performance model: the 1-MIPS recovery
    CPU, the stable-memory slowdown and the disk service times all turn into
    event delays measured against this clock. *)

type t

val create : unit -> t

val now : t -> float
(** Current simulated time (µs). *)

val schedule_at : t -> float -> (unit -> unit) -> unit
(** [schedule_at t time f] runs [f] when the clock reaches [time].  Times in
    the past are clamped to [now]. *)

val schedule : t -> delay:float -> (unit -> unit) -> unit
(** [schedule t ~delay f] is [schedule_at t (now t +. delay) f]. *)

val pending : t -> int
(** Number of events not yet executed. *)

val clear : t -> unit
(** Discard every pending event without running it (crash simulation: work
    that was in flight at the moment of failure never happens).  The clock
    keeps its value. *)

val step : t -> bool
(** Execute the next event; false when the queue is empty. *)

val run : t -> unit
(** Drain every event (terminates only if the event population does). *)

val run_until : t -> float -> unit
(** Execute events with time <= the horizon; afterwards [now] is the horizon
    (or later if an executed event pushed the clock exactly to it). *)

val run_while : t -> (unit -> bool) -> unit
(** Execute events while the predicate holds and events remain. *)

(** Condition variables for event-style rendezvous: a waiter registers a
    continuation, a signaller releases all current waiters. *)
module Cond : sig
  type cond

  val create : t -> cond
  val wait : cond -> (unit -> unit) -> unit
  val signal_all : cond -> unit
  (** Waiters run as fresh events at the current time. *)

  val waiters : cond -> int
end
