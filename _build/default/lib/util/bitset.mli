(** Fixed-size bitset.

    Tracks slot occupancy in partitions and free/used state in the
    checkpoint-disk allocation map. *)

type t

val create : int -> t
(** [create n] is a set over [\[0, n)], all bits clear. *)

val length : t -> int
val set : t -> int -> unit
val clear : t -> int -> unit
val mem : t -> int -> bool
val cardinal : t -> int
(** Number of set bits (cached; O(1)). *)

val first_clear : t -> int option
(** Lowest clear bit, if any. *)

val first_clear_from : t -> int -> int option
(** Lowest clear bit at or after the given index, wrapping around to 0 —
    the scan order of a pseudo-circular allocator. *)

val iter_set : (int -> unit) -> t -> unit
val copy : t -> t
val reset : t -> unit
