type t = {
  mutable samples : float array;
  mutable len : int;
  mutable sum : float;
  mutable sum_sq : float;
  mutable sorted : bool;
}

let create () =
  { samples = Array.make 16 0.0; len = 0; sum = 0.0; sum_sq = 0.0; sorted = true }

let ensure_capacity t =
  if t.len = Array.length t.samples then begin
    let bigger = Array.make (2 * t.len) 0.0 in
    Array.blit t.samples 0 bigger 0 t.len;
    t.samples <- bigger
  end

let add t x =
  ensure_capacity t;
  t.samples.(t.len) <- x;
  t.len <- t.len + 1;
  t.sum <- t.sum +. x;
  t.sum_sq <- t.sum_sq +. (x *. x);
  t.sorted <- false

let add_int t x = add t (float_of_int x)
let count t = t.len
let total t = t.sum
let mean t = if t.len = 0 then 0.0 else t.sum /. float_of_int t.len

let fold_samples f init t =
  let acc = ref init in
  for i = 0 to t.len - 1 do
    acc := f !acc t.samples.(i)
  done;
  !acc

let min t = if t.len = 0 then 0.0 else fold_samples Float.min infinity t
let max t = if t.len = 0 then 0.0 else fold_samples Float.max neg_infinity t

let stddev t =
  if t.len < 2 then 0.0
  else begin
    let n = float_of_int t.len in
    let m = t.sum /. n in
    let var = (t.sum_sq /. n) -. (m *. m) in
    if var <= 0.0 then 0.0 else sqrt var
  end

let sort_in_place t =
  if not t.sorted then begin
    let live = Array.sub t.samples 0 t.len in
    Array.sort Float.compare live;
    Array.blit live 0 t.samples 0 t.len;
    t.sorted <- true
  end

let percentile t p =
  if t.len = 0 then 0.0
  else begin
    sort_in_place t;
    let p = Float.max 0.0 (Float.min 100.0 p) in
    (* Nearest-rank. *)
    let rank = int_of_float (ceil (p /. 100.0 *. float_of_int t.len)) in
    let idx = Stdlib.max 0 (Stdlib.min (t.len - 1) (rank - 1)) in
    t.samples.(idx)
  end

let median t = percentile t 50.0

let clear t =
  t.len <- 0;
  t.sum <- 0.0;
  t.sum_sq <- 0.0;
  t.sorted <- true

let pp ppf t =
  Format.fprintf ppf "n=%d mean=%.3f p50=%.3f p99=%.3f max=%.3f" (count t)
    (mean t) (median t) (percentile t 99.0) (max t)

module Histogram = struct
  type h = {
    lo : float;
    hi : float;
    counts : int array;
    mutable n : int;
  }

  let create ~lo ~hi ~buckets =
    assert (buckets > 0 && hi > lo);
    { lo; hi; counts = Array.make buckets 0; n = 0 }

  let add h x =
    let buckets = Array.length h.counts in
    let raw =
      int_of_float ((x -. h.lo) /. (h.hi -. h.lo) *. float_of_int buckets)
    in
    let idx = Stdlib.max 0 (Stdlib.min (buckets - 1) raw) in
    h.counts.(idx) <- h.counts.(idx) + 1;
    h.n <- h.n + 1

  let count h = h.n
  let bucket_counts h = Array.copy h.counts

  let pp ppf h =
    let buckets = Array.length h.counts in
    let width = (h.hi -. h.lo) /. float_of_int buckets in
    for i = 0 to buckets - 1 do
      if h.counts.(i) > 0 then
        Format.fprintf ppf "[%.2f,%.2f): %d@."
          (h.lo +. (float_of_int i *. width))
          (h.lo +. (float_of_int (i + 1) *. width))
          h.counts.(i)
    done
end
