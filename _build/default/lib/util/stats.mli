(** Streaming summary statistics and fixed-bucket histograms.

    Used by the simulator's metric collection and by the benchmark harness
    to summarize measured series (mean, percentiles) without keeping every
    sample when the population is large. *)

type t
(** A mutable statistics accumulator that retains all samples (the
    reproduction's populations are small enough; percentiles are exact). *)

val create : unit -> t
val add : t -> float -> unit
val add_int : t -> int -> unit
val count : t -> int
val total : t -> float
val mean : t -> float
(** Mean of the samples; 0 when empty. *)

val min : t -> float
val max : t -> float
(** Extremes; 0 when empty. *)

val stddev : t -> float
(** Population standard deviation; 0 when fewer than two samples. *)

val percentile : t -> float -> float
(** [percentile t p] with [p] in [\[0, 100\]], nearest-rank on the sorted
    samples; 0 when empty. *)

val median : t -> float

val clear : t -> unit

val pp : Format.formatter -> t -> unit
(** "n=… mean=… p50=… p99=… max=…" one-liner. *)

(** Fixed-width bucket histogram over [\[lo, hi)]. *)
module Histogram : sig
  type h

  val create : lo:float -> hi:float -> buckets:int -> h
  val add : h -> float -> unit
  val count : h -> int
  val bucket_counts : h -> int array
  (** Includes underflow/overflow in the first/last bucket. *)

  val pp : Format.formatter -> h -> unit
end
