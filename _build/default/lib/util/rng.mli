(** Deterministic pseudo-random number generation.

    A small, fast, splittable generator (splitmix64) used everywhere the
    reproduction needs randomness: workload generation, fault injection,
    property-test data.  Determinism matters because the benchmark harness
    must regenerate the paper's series identically from run to run. *)

type t
(** Mutable generator state. *)

val create : int64 -> t
(** [create seed] makes a fresh generator from a 64-bit seed. *)

val of_int : int -> t
(** [of_int seed] is [create (Int64.of_int seed)]. *)

val copy : t -> t
(** [copy t] is an independent generator with the same current state. *)

val split : t -> t
(** [split t] derives a statistically independent child generator and
    advances [t].  Use one child per simulated component so that adding a
    component does not perturb the random streams of the others. *)

val next64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  [bound] must be positive. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive. Requires lo <= hi. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
(** Fair coin. *)

val exponential : t -> float -> float
(** [exponential t mean] samples an exponential with the given mean;
    used for inter-arrival times in the simulator. *)

val zipf : t -> n:int -> theta:float -> int
(** [zipf t ~n ~theta] samples from a Zipf-like distribution over
    [\[0, n)] with skew [theta] (0 = uniform, larger = more skewed) using
    the rejection-free power approximation.  Drives hot/cold partition
    access patterns. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** Uniformly random element of a non-empty array. *)

val bytes : t -> int -> bytes
(** [bytes t n] is [n] random bytes. *)
