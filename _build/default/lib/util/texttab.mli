(** Plain-text table rendering for the benchmark harness.

    The benches regenerate the paper's tables and graph series as aligned
    text so that `dune exec bench/main.exe` output can be compared with the
    paper directly. *)

type align = Left | Right

type t

val create : headers:string list -> t
val create_aligned : headers:(string * align) list -> t

val row : t -> string list -> unit
(** @raise Invalid_argument when the arity differs from the header. *)

val rowf : t -> ('a, Format.formatter, unit, unit) format4 -> 'a
(** Formats a single string and adds it as a one-cell row (section notes). *)

val render : t -> string
val print : t -> unit
(** Render to stdout followed by a newline. *)

val series :
  title:string -> x_label:string -> y_labels:string list ->
  (float * float list) list -> string
(** [series ~title ~x_label ~y_labels points] renders a graph's data as a
    table: one row per x value, one column per series — the textual
    equivalent of the paper's Graphs 1–3. *)
