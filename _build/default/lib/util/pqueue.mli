(** Binary min-heap priority queue.

    Backbone of the discrete-event simulator's event queue and of the
    recovery manager's First-LSN list (oldest-first ordering of active
    partitions).  Ties are broken by insertion order so event execution is
    deterministic. *)

type 'a t

val create : unit -> 'a t

val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> priority:float -> 'a -> unit

val peek : 'a t -> (float * 'a) option
(** Smallest priority with its value, without removal. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the smallest priority with its value. *)

val pop_exn : 'a t -> float * 'a
(** @raise Invalid_argument on empty queue. *)

val clear : 'a t -> unit

val to_list : 'a t -> (float * 'a) list
(** Snapshot in ascending priority order (O(n log n); for tests). *)
