(** Page checksums.

    Every log page and checkpoint image carries a CRC so that recovery can
    detect torn or corrupted pages (the paper's "consistency check during
    recovery" on the partition address is strengthened to a whole-page
    check). *)

val crc32 : ?init:int32 -> bytes -> pos:int -> len:int -> int32
(** Standard CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320). *)

val crc32_bytes : bytes -> int32
(** CRC-32 of an entire byte buffer. *)

val fletcher32 : bytes -> pos:int -> len:int -> int32
(** Cheaper alternative used for stable-memory block headers. *)
