lib/util/texttab.mli: Format
