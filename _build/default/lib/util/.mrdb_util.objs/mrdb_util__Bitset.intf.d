lib/util/bitset.mli:
