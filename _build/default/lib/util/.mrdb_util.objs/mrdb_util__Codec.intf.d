lib/util/codec.mli:
