lib/util/pqueue.mli:
