lib/util/checksum.mli:
