lib/util/texttab.ml: Buffer Format List Printf Stdlib String
