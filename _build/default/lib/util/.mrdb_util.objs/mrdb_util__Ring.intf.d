lib/util/ring.mli:
