lib/util/rng.mli:
