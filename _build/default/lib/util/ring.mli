(** Bounded ring buffer (FIFO).

    Models fixed-capacity queues in the hardware layer: disk request queues
    and the checkpoint-request communication buffer in the Stable Log
    Buffer.  Pushing to a full ring fails explicitly, mirroring the
    back-pressure a real bounded buffer exerts. *)

type 'a t

val create : capacity:int -> 'a t
(** @raise Invalid_argument if capacity < 1. *)

val capacity : 'a t -> int
val length : 'a t -> int
val is_empty : 'a t -> bool
val is_full : 'a t -> bool

val push : 'a t -> 'a -> bool
(** [push t x] enqueues [x]; returns false (and does nothing) when full. *)

val push_exn : 'a t -> 'a -> unit
(** @raise Failure when full. *)

val pop : 'a t -> 'a option
val peek : 'a t -> 'a option

val iter : ('a -> unit) -> 'a t -> unit
(** Front-to-back iteration without consuming. *)

val clear : 'a t -> unit
val to_list : 'a t -> 'a list
