(* Splitmix64: tiny state, passes BigCrush, and splitting gives cheap
   independent streams.  Reference: Steele, Lea & Flood, OOPSLA 2014. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = seed }
let of_int seed = create (Int64.of_int seed)
let copy t = { state = t.state }

let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let next64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let child_seed = next64 t in
  create (mix64 child_seed)

let int t bound =
  assert (bound > 0);
  let r = Int64.to_int (next64 t) land max_int in
  r mod bound

let int_in t lo hi =
  assert (lo <= hi);
  lo + int t (hi - lo + 1)

let float t bound =
  (* 53 random bits mapped into [0, 1). *)
  let bits = Int64.shift_right_logical (next64 t) 11 in
  Int64.to_float bits /. 9007199254740992.0 *. bound

let bool t = Int64.logand (next64 t) 1L = 1L

let exponential t mean =
  let u = float t 1.0 in
  (* Avoid log 0. *)
  let u = if u <= 0.0 then epsilon_float else u in
  -.mean *. log u

let zipf t ~n ~theta =
  assert (n > 0);
  if theta <= 0.0 then int t n
  else begin
    (* Power-law approximation: U^(1/(1-theta')) concentrates mass on low
       indices; cheap and monotone in theta, adequate for skewed workload
       generation (we need shape, not exact Zipfian moments). *)
    let alpha = 1.0 /. (1.0 +. theta) in
    let u = float t 1.0 in
    let x = Float.of_int n *. (u ** (1.0 /. alpha)) in
    let i = int_of_float x in
    if i >= n then n - 1 else i
  end

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick t a =
  assert (Array.length a > 0);
  a.(int t (Array.length a))

let bytes t n =
  let b = Bytes.create n in
  for i = 0 to n - 1 do
    Bytes.unsafe_set b i (Char.unsafe_chr (int t 256))
  done;
  b
