(** Volatile UNDO space.

    "UNDO log records are placed in the volatile UNDO space ... they are
    not needed after a transaction commits", and like the Stable Log Buffer
    it is "managed as a set of fixed-size blocks ... allocated to
    transactions on a demand basis, and a given block will be dedicated to
    a single transaction during its lifetime" — so the only critical
    section is block allocation, never record writing.

    Undo records are (partition, inverse-operation) pairs serialized into
    the transaction's block chain.  At abort they are decoded and applied
    in reverse order; at commit the chain is discarded wholesale.  Being
    volatile, the whole space vanishes on a crash (enforced via a
    {!Mrdb_hw.Volatile.Epoch}). *)

open Mrdb_storage

type t

val create :
  ?block_bytes:int -> ?block_count:int -> Mrdb_hw.Volatile.Epoch.t -> t
(** Default geometry: 2 KiB blocks, 1024 blocks. *)

val block_bytes : t -> int
val blocks_in_use : t -> int
val blocks_free : t -> int

exception Out_of_undo_space

type chain
(** A transaction's private undo chain. *)

val open_chain : t -> chain
(** Allocate the first block for a transaction.
    @raise Out_of_undo_space when the space is exhausted. *)

val push : t -> chain -> Addr.partition -> Part_op.t -> unit
(** Append an undo record (allocating further blocks as needed).
    @raise Out_of_undo_space when the space is exhausted. *)

val record_count : chain -> int
val byte_size : chain -> int

val pop_all : t -> chain -> (Addr.partition * Part_op.t) list
(** Decode the chain's records in {e reverse} (most-recent-first) order —
    the order aborts must apply them — and release its blocks. *)

val discard : t -> chain -> unit
(** Commit path: release the chain's blocks without decoding. *)
