lib/txn/txn.ml: Addr Hashtbl List Mrdb_storage Part_op Partition Printf Undo_space
