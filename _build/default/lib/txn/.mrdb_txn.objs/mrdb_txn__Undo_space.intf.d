lib/txn/undo_space.mli: Addr Mrdb_hw Mrdb_storage Part_op
