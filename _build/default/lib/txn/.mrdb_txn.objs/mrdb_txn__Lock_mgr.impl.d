lib/txn/lock_mgr.ml: Format Hashtbl List Mrdb_storage Option
