lib/txn/undo_space.ml: Addr Array Bytes List Mrdb_hw Mrdb_storage Mrdb_util Part_op Queue
