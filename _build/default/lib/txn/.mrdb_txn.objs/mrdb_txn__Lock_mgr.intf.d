lib/txn/lock_mgr.mli: Format Mrdb_storage
