lib/txn/txn.mli: Addr Mrdb_storage Part_op Partition Undo_space
