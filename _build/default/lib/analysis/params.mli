(** Table 2 — the parameters of the paper's performance analysis.

    Instruction counts are per the paper's estimates for a specialized
    recovery component ("the instruction count numbers appear smaller than
    normal system numbers"); a generic instruction on the 1-MIPS recovery
    processor executes in ~1 µs and a memory reference in ~1 µs, with
    stable reliable memory four times slower than regular memory. *)

type t = {
  (* instruction costs *)
  i_record_lookup : int;   (** read one log record and find its bin — 20 instr/record *)
  i_copy_fixed : int;      (** startup cost of a byte-string copy — 3 instr/copy *)
  i_copy_add : float;      (** additional cost per byte copied — 0.125 instr/byte *)
  i_write_init : int;      (** initiating a disk write of a full bin page — 500 instr/page *)
  i_page_alloc : int;      (** allocating a new bin page, releasing the old — 100 instr/page *)
  i_page_update : int;     (** updating bin page information — 10 instr/record *)
  i_page_check : int;      (** checking bin page existence — 10 instr/record *)
  i_process_lsn : int;     (** LSN bookkeeping + age-trigger check — 40 instr/page *)
  i_checkpoint : int;      (** signalling the main CPU — 40 instr/checkpoint *)
  (* sizes *)
  s_log_record : int;      (** average log record size — 24 bytes *)
  s_log_page : int;        (** log page size — 8 KB *)
  s_partition : int;       (** partition size — 48 KB *)
  n_update : int;          (** records before a checkpoint triggers — 1000 *)
  (* processors and memory *)
  p_recovery_mips : float; (** recovery CPU — 1.0 MIPS *)
  p_main_mips : float;     (** main CPU — 6.0 MIPS (unused by the formulas) *)
  stable_slowdown : float; (** stable memory slowdown vs regular — 4× *)
  (* disks (§3.1's two-head, interleaved-sector drive) *)
  d_seek_avg_us : float;   (** average seek (checkpoint disk) *)
  d_seek_near_us : float;  (** sibling-page seek (log disk) *)
  d_page_transfer_us : float; (** single-page transfer at the page rate *)
  d_track_rate_bytes_per_s : float; (** whole-track transfer rate (double) *)
}

val default : t
(** Table 2 values. *)

val with_sizes : ?s_log_record:int -> ?s_log_page:int -> ?s_partition:int ->
  ?n_update:int -> t -> t

val rows : t -> (string * string * string) list
(** (name, value, units) rows for regenerating Table 2 as text.  The
    calculated parameters (I_record_sort, I_page_write, rates) come from
    {!Log_model} / {!Ckpt_model}. *)
