type t = {
  i_record_lookup : int;
  i_copy_fixed : int;
  i_copy_add : float;
  i_write_init : int;
  i_page_alloc : int;
  i_page_update : int;
  i_page_check : int;
  i_process_lsn : int;
  i_checkpoint : int;
  s_log_record : int;
  s_log_page : int;
  s_partition : int;
  n_update : int;
  p_recovery_mips : float;
  p_main_mips : float;
  stable_slowdown : float;
  d_seek_avg_us : float;
  d_seek_near_us : float;
  d_page_transfer_us : float;
  d_track_rate_bytes_per_s : float;
}

let default =
  {
    i_record_lookup = 20;
    i_copy_fixed = 3;
    i_copy_add = 0.125;
    i_write_init = 500;
    i_page_alloc = 100;
    i_page_update = 10;
    i_page_check = 10;
    i_process_lsn = 40;
    i_checkpoint = 40;
    s_log_record = 24;
    s_log_page = 8 * 1024;
    s_partition = 48 * 1024;
    n_update = 1000;
    p_recovery_mips = 1.0;
    p_main_mips = 6.0;
    stable_slowdown = 4.0;
    d_seek_avg_us = 12_000.0;
    d_seek_near_us = 4_000.0;
    d_page_transfer_us = 4_096.0; (* 8 KB at ~2 MB/s *)
    d_track_rate_bytes_per_s = 4.0e6; (* double the page rate *)
  }

let with_sizes ?s_log_record ?s_log_page ?s_partition ?n_update t =
  {
    t with
    s_log_record = Option.value s_log_record ~default:t.s_log_record;
    s_log_page = Option.value s_log_page ~default:t.s_log_page;
    s_partition = Option.value s_partition ~default:t.s_partition;
    n_update = Option.value n_update ~default:t.n_update;
  }

let rows t =
  let i name v units = (name, string_of_int v, units) in
  let f name v units = (name, Printf.sprintf "%g" v, units) in
  [
    i "I_record_lookup" t.i_record_lookup "instructions / record";
    i "I_copy_fixed" t.i_copy_fixed "instructions / copy";
    f "I_copy_add" t.i_copy_add "instructions / byte";
    i "I_write_init" t.i_write_init "instructions / page write";
    i "I_page_alloc" t.i_page_alloc "instructions / page write";
    i "I_page_update" t.i_page_update "instructions / record";
    i "I_page_check" t.i_page_check "instructions / record";
    i "I_process_LSN" t.i_process_lsn "instructions / page write";
    i "I_checkpoint" t.i_checkpoint "instructions / checkpoint";
    i "S_log_record" t.s_log_record "bytes / record";
    i "S_log_page" t.s_log_page "bytes / page";
    i "S_partition" t.s_partition "bytes / partition";
    i "N_update" t.n_update "log records / partition checkpoint";
    f "P_recovery" t.p_recovery_mips "MIPS";
    f "P_main" t.p_main_mips "MIPS (not used by the formulas)";
    f "stable_slowdown" t.stable_slowdown "x regular memory";
    f "D_seek_avg" (t.d_seek_avg_us /. 1000.0) "ms";
    f "D_seek_near" (t.d_seek_near_us /. 1000.0) "ms";
    f "D_page_transfer" (t.d_page_transfer_us /. 1000.0) "ms / page";
    f "D_track_rate" (t.d_track_rate_bytes_per_s /. 1e6) "MB/s (track mode)";
  ]
