(** Post-crash recovery time model (§3.4).

    "A partition's recovery time is determined by the time it takes to read
    its checkpoint image from the checkpoint disk, to read all of its log
    pages, and to apply those log pages to its checkpoint image.  A
    partition's checkpoint image and its log pages may be read in parallel,
    since they are on different disks", and with a large enough page
    directory the log pages stream in apply order, overlapping replay with
    I/O.

    Database-level recovery is "a special case of partition-level recovery
    with one very large partition (the entire database)": every partition
    image and the whole log must be read before any transaction runs. *)

type partition_estimate = {
  image_read_us : float;
  log_read_us : float;
  apply_us : float;       (** replay CPU time (overlapped when in order) *)
  total_us : float;       (** with image ∥ log overlap *)
  log_pages : float;
}

val partition_recovery :
  Params.t -> ?log_records:int -> unit -> partition_estimate
(** Time to restore one partition that accumulated [log_records] since its
    checkpoint (default: N_update / 2, the expected count under a steady
    update-count trigger). *)

type comparison = {
  first_txn_partition_us : float;
      (** partition-level: a transaction needing one partition runs after
          one partition restore *)
  first_txn_db_us : float;
      (** database-level: after the whole database reloads *)
  full_restore_partition_us : float;
      (** background completion, partition at a time *)
  full_restore_db_us : float;
  speedup_first_txn : float;
}

val compare_levels :
  Params.t -> n_partitions:int -> ?log_records_per_partition:int -> unit -> comparison
(** Graph/§3.4 comparison for a database of [n_partitions] partitions. *)

val sweep :
  Params.t -> n_partitions:int list -> (float * float list) list
(** Rows (partitions, [first-txn partition-level; first-txn db-level]) —
    the R1 experiment's analytic series. *)
