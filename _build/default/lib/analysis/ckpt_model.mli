(** Checkpoint-frequency model (§3.3, Graph 3).

    With an infinite log window every checkpoint is triggered by update
    count (best case: one checkpoint per N_update records); with a finite
    window some partitions are checkpointed {e by age}, in the worst case
    after accumulating only a single page of records.  The mixed-trigger
    frequency is

    R_ckpt = R_records × (f_update / N_update + f_age × S_rec / S_page). *)

val best_case : Params.t -> records_per_s:float -> float
(** All checkpoints triggered by update count. *)

val worst_case : Params.t -> records_per_s:float -> float
(** All checkpoints triggered by age after one page of records. *)

val mixed : Params.t -> records_per_s:float -> f_update:float -> float
(** [f_update] triggered by update count, the rest by age (worst case:
    a single page each).  @raise Invalid_argument unless 0 ≤ f_update ≤ 1. *)

val checkpoint_load_fraction :
  Params.t -> records_per_txn:int -> f_update:float -> float
(** Checkpoint transactions as a fraction of the total transaction load —
    the §3.3 "1.5 percent" sanity check (independent of the logging rate:
    both scale linearly with it). *)

val graph3 :
  logging_rates:float list -> mixes:(int * float) list -> Params.t ->
  (float * float list) list
(** Rows (records/s, checkpoint frequency per (N_update, f_update) series)
    — Graph 3's data. *)
