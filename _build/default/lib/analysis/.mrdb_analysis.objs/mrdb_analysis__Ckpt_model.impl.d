lib/analysis/ckpt_model.ml: List Params
