lib/analysis/params.mli:
