lib/analysis/log_model.ml: Float List Params
