lib/analysis/log_model.mli: Params
