lib/analysis/recovery_model.ml: Float List Params
