lib/analysis/recovery_model.mli: Params
