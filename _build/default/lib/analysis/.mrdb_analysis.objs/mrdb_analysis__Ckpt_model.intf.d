lib/analysis/ckpt_model.mli: Params
