lib/analysis/params.ml: Option Printf
