(** Logging-capacity model (§3.2, Graphs 1 and 2).

    "During normal processing the recovery CPU spends most of its time
    moving log records from the Stable Log Buffer into partition bins in
    the Stable Log Tail, a smaller portion initiating disk write requests
    for full pages, and an even smaller portion notifying the main CPU of
    partitions that must be checkpointed."

    The record-sorting cost charges the byte copy against {e stable} memory
    on both the read (SLB) and write (SLT) side at the configured slowdown,
    which reproduces the paper's ≈4,000 debit/credit transactions per
    second headline at the Table 2 point. *)

val i_record_sort : Params.t -> float
(** Instructions to move one record from the SLB to its bin. *)

val i_page_write : Params.t -> float
(** Instructions per bin-page flush, including the amortized checkpoint
    signalling (one signal per [n_update] records). *)

val instructions_per_byte : Params.t -> float
val bytes_logged_per_s : Params.t -> float
(** R_bytes_logged = P_recovery / instructions-per-byte. *)

val records_logged_per_s : Params.t -> float
(** Graph 1's y-axis. *)

val txn_rate : Params.t -> records_per_txn:int -> float
(** Graph 2's y-axis: maximum transactions/second the logging component
    sustains when each transaction writes [records_per_txn] records. *)

val graph1 :
  record_sizes:int list -> page_sizes:int list -> Params.t ->
  (float * float list) list
(** Rows (record size, capacity per page-size series) — Graph 1's data. *)

val graph2 :
  records_per_txn:int list -> record_sizes:int list -> Params.t ->
  (float * float list) list
(** Rows (records/txn, txn rate per record-size series) — Graph 2's data. *)
