(** Archive logging (§2.6).

    "The disk copy of the database is basically the archive copy for the
    primary memory copy, but the disk copy also requires an archive copy
    (probably on tape or optical disk) in case of disk media failure."
    The paper defers the details to the classical literature; this module
    implements the obvious realization: a sequential tape that receives a
    copy of {e every} log page the recovery CPU writes and {e every}
    checkpoint image a checkpoint transaction writes.

    Media recovery of a lost {e checkpoint disk} then reduces to: for each
    partition, take the newest archived image (the same image the catalog
    references — the archive saw every one) and let normal recovery replay
    the surviving log on top.  A lost {e log disk} mirror is already
    handled by the duplexed pair. *)

open Mrdb_storage

(** Append-only tape. *)
module Tape : sig
  type record =
    | Log_page of { lsn : int64; image : bytes }
    | Ckpt_image of { part : Addr.partition; watermark : int; image : bytes }

  type t

  val create : unit -> t
  val append : t -> record -> unit
  val length : t -> int
  val bytes_written : t -> int
  val iter : (record -> unit) -> t -> unit
  (** Oldest first (a sequential scan, as on real tape). *)
end

type t

val create : unit -> t
val tape : t -> Tape.t

val on_log_page : t -> lsn:int64 -> bytes -> unit
(** Tap for {!Mrdb_wal.Log_disk.set_tap}. *)

val on_ckpt_image : t -> Mrdb_ckpt.Ckpt_image.t -> page_bytes:int -> unit
(** Called by the checkpoint transaction after the image is durable. *)

val latest_image : t -> Addr.partition -> Mrdb_ckpt.Ckpt_image.t option
(** Newest archived checkpoint image of a partition (scans the tape). *)

val log_pages_after : t -> lsn:int64 -> (int64 * bytes) list
(** Archived log pages with LSN > the given one, oldest first — the tail
    a media-recovery replay needs when the log window has already reused
    those slots. *)

val stats : t -> string
