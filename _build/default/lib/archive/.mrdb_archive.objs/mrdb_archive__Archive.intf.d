lib/archive/archive.mli: Addr Mrdb_ckpt Mrdb_storage
