lib/archive/archive.ml: Addr Bytes List Mrdb_ckpt Mrdb_storage Printf
