(** Layout of the stable reliable memory.

    Carves one {!Mrdb_hw.Stable_mem.t} into the regions the recovery
    component needs:

    - a small header (the global log sequence number, committed-list ring
      cursors, bin-count cell);
    - the {e well-known area} holding the catalog partition list — "this is
      kept in a well-known location" (§2.5);
    - the committed-transaction ring (commit order of SLB chains — writing
      an entry here {e is} the commit point);
    - the Stable Log Buffer block pool;
    - the partition-bin info blocks of the Stable Log Tail;
    - the log-page buffer pool (bins borrow page buffers from here;
      in-flight pages keep theirs until the disk write is durable).

    The layout object itself is volatile; after a crash a fresh layout with
    the same configuration re-attaches to the same stable memory and finds
    all regions where they were. *)

type config = {
  slb_block_bytes : int;
  slb_block_count : int;
  committed_capacity : int;  (** max undrained committed transactions *)
  log_page_bytes : int;
  page_pool_count : int;
  bin_count : int;           (** max partitions with bin-table entries *)
  dir_size : int;            (** N, the log page directory size *)
  wellknown_bytes : int;
}

val default_config : config
(** 2 KiB × 512 SLB blocks, 8 KiB log pages × 576 pool buffers (one buffer
    per possible active partition plus in-flight slack), 512 bins,
    directory size 8 — about 6 MB of stable memory, the paper's "few
    megabytes". *)

val bin_info_bytes : config -> int
val required_bytes : config -> int

type t

val attach : config -> Mrdb_hw.Stable_mem.t -> t
(** Bind regions over (possibly pre-existing) stable memory.
    @raise Invalid_argument when the memory is too small. *)

val config : t -> config
val mem : t -> Mrdb_hw.Stable_mem.t

(** {2 Header cells} *)

val next_lsn : t -> int64
val set_next_lsn : t -> int64 -> unit

val committed_head : t -> int
val committed_tail : t -> int
val set_committed_head : t -> int -> unit
val set_committed_tail : t -> int -> unit

val bin_count_used : t -> int
val set_bin_count_used : t -> int -> unit

(** {2 Region offsets} *)

val wellknown_off : t -> int
val committed_entry_off : t -> int -> int
(** Offset of ring slot [i] (entries are 8 bytes: u32 txn, i32 first
    block). *)

val bin_info_off : t -> int -> int
val slb_blocks : t -> Mrdb_hw.Stable_mem.Blocks.alloc
val page_pool : t -> Mrdb_hw.Stable_mem.Blocks.alloc
(** Block allocators over the SLB and page-pool regions.  Allocation maps
    are volatile; rebuild them after a crash from the recovered chain and
    bin state ({!Mrdb_hw.Stable_mem.Blocks.rebuild_after_crash}). *)
