lib/wal/partition_bin.ml: Addr Array Bytes Format Int64 List Log_disk Log_page Log_record Mrdb_hw Mrdb_storage Option Printf Stable_layout
