lib/wal/slb.mli: Log_record Stable_layout
