lib/wal/log_disk.ml: Bytes Int64 Log_page Mrdb_hw Mrdb_sim Printf Stable_layout
