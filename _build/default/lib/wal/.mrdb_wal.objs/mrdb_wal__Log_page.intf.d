lib/wal/log_page.mli: Addr Log_record Mrdb_storage
