lib/wal/stable_layout.ml: Mrdb_hw Printf
