lib/wal/slt.ml: Addr Array Hashtbl Int64 List Log_disk Log_page Log_record Mrdb_hw Mrdb_sim Mrdb_storage Mrdb_util Partition_bin Printf Stable_layout Stdlib
