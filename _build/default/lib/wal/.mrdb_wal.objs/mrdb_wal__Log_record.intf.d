lib/wal/log_record.mli: Format Mrdb_storage Part_op
