lib/wal/stable_layout.mli: Mrdb_hw
