lib/wal/slt.mli: Addr Log_disk Log_record Mrdb_storage Partition_bin Stable_layout
