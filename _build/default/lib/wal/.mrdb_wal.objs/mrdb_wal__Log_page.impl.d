lib/wal/log_page.ml: Addr Array Bytes Int64 List Log_record Mrdb_storage Mrdb_util
