lib/wal/log_disk.mli: Log_page Log_record Mrdb_hw Mrdb_sim Stable_layout
