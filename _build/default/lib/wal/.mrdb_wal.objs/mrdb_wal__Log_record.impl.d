lib/wal/log_record.ml: Bytes Format Mrdb_storage Mrdb_util Part_op Printf
