lib/wal/slb.ml: Bytes Fun Hashtbl List Log_record Mrdb_hw Mrdb_util Stable_layout
