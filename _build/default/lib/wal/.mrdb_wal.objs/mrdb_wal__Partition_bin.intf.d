lib/wal/partition_bin.mli: Addr Format Log_disk Log_record Mrdb_storage Stable_layout
