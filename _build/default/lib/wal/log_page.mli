(** On-disk log page format.

    Each page carries: the owning partition's address ("the entry serves as
    a consistency check during recovery so that the recovery manager can be
    assured of having the correct page"), its LSN, a backward link to the
    partition's previous log page, an optional embedded {e log page
    directory} (the LSNs of the previous directory-span of pages — stored
    "in every Nth log page" so recovery can locate whole spans with one
    read and then fetch their pages in the order they must be applied), the
    u16-framed REDO records, and a trailing CRC-32. *)

open Mrdb_storage

type header = {
  lsn : int64;
  part : Addr.partition;
  prev_lsn : int64;        (** -1 when this is the partition's first page *)
  dir : int64 array;       (** LSNs of the previous span, oldest first; [||] on non-directory pages *)
  nrecords : int;
  used : int;              (** payload bytes *)
}

val payload_off : dir_size:int -> int
val payload_capacity : page_bytes:int -> dir_size:int -> int
(** Bytes available for framed records. *)

val build :
  page_bytes:int -> dir_size:int -> lsn:int64 -> part:Addr.partition ->
  prev_lsn:int64 -> dir:int64 array -> payload:bytes -> nrecords:int -> bytes
(** Compose a full page image (payload = used bytes of framed records).
    @raise Invalid_argument when the payload or directory exceed capacity. *)

val parse : page_bytes:int -> dir_size:int -> bytes -> (header * Log_record.t list, string) result
(** Verify magic and CRC and decode.  [Error] explains the mismatch (torn
    page, wrong partition slot reuse, etc.). *)

val frame_record : Log_record.t -> bytes
(** u16 length prefix + encoded record, as stored in bin buffers, SLB
    blocks and page payloads. *)

val parse_frames : bytes -> used:int -> Log_record.t list
