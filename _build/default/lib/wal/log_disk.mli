(** Duplexed log disk with a finite, reusable {e log window}.

    "The available log space remains constant, and it is reused over time
    ... The log window is a fixed amount of log disk space that moves
    forward through the total disk space as new log pages are written."
    LSNs increase monotonically (the counter lives in stable memory); page
    LSN [l] occupies disk page [l mod window_pages], so a page's slot is
    overwritten exactly when the window has advanced a full lap past it.

    Reads verify the CRC and the stored LSN: asking for an LSN that has
    fallen out of the window finds a younger page in its slot and reports
    an error instead of handing back wrong data. *)

type t

val create :
  Mrdb_sim.Sim.t -> layout:Stable_layout.t -> ?params:Mrdb_hw.Disk.params ->
  window_pages:int -> unit -> t
(** [params] defaults to {!Mrdb_hw.Disk.default_log_params} at the layout's
    log page size. *)

val sim : t -> Mrdb_sim.Sim.t
val window_pages : t -> int
val page_bytes : t -> int
val dir_size : t -> int
val duplex : t -> Mrdb_hw.Duplex.t

val next_lsn : t -> int64
(** The LSN the next allocated page will get. *)

val window_start : t -> int64
(** Oldest LSN still inside the window; pages below it are unreadable. *)

val in_window : t -> int64 -> bool

val alloc_lsn : t -> int64
(** Allocate and persist the next LSN (stable counter). *)

val write_page : t -> lsn:int64 -> bytes -> (unit -> unit) -> unit
(** Write a composed page image at its window slot; the continuation fires
    when both mirrors are durable.
    @raise Invalid_argument for an out-of-window LSN or wrong image size. *)

val set_tap : t -> (lsn:int64 -> bytes -> unit) -> unit
(** Install a write tap: called once per {!write_page} with the image —
    the hook the archive component uses to roll log contents onto tape
    before window slots are reused (§2.6). *)

val read_page :
  t -> lsn:int64 ->
  ((Log_page.header * Log_record.t list, string) result -> unit) -> unit
(** Read and verify the page at [lsn].  Produces [Error] for CRC failures,
    slot reuse (stored LSN differs) or out-of-window requests. *)

val pages_written : t -> int
