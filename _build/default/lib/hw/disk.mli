(** Simulated disk drive.

    Reproduces the disk assumptions of §3.1:

    - a two-head-per-surface, high-performance drive with {e relatively low
      seek times}; the checkpoint disks see average seeks while successive
      log-page operations on the log disk see shorter "sibling" seeks;
    - log-disk sectors are {e interleaved}: logically adjacent sectors are
      physically one apart, giving the electronics a full sector time to
      set up the next single-page write, so back-to-back page writes incur
      one extra sector-pass each rather than a full revolution;
    - partitions are written in {e whole tracks} at double the single-page
      transfer rate.

    The drive stores real bytes per page: recovery reads back exactly what
    was written, and a crash loses nothing that completed.  Requests are
    serviced strictly FIFO (the recovery CPU "needs to do little more than
    append a disk write request to the disk device queue"). *)

type params = {
  page_bytes : int;        (** sector/page size (the paper's log page) *)
  pages_per_track : int;
  seek_avg_us : float;     (** average seek (checkpoint-style access) *)
  seek_near_us : float;    (** short seek between sibling log pages *)
  settle_us : float;       (** per-operation head-settle / setup time *)
  page_transfer_us : float;(** transfer time of one page, single-page mode *)
  interleaved : bool;      (** log-disk sector interleave *)
}

val default_log_params : page_bytes:int -> params
(** 1987-class drive tuned for log traffic (short seeks, interleave). *)

val default_ckpt_params : page_bytes:int -> params
(** Same drive, checkpoint usage (average seeks, whole-track writes). *)

type t

val create : ?name:string -> Mrdb_sim.Sim.t -> params:params -> capacity_pages:int -> t

val name : t -> string
val params : t -> params
val capacity_pages : t -> int

(** {2 Timed interface (goes through the simulated clock)} *)

val write_page : t -> page:int -> bytes -> (unit -> unit) -> unit
(** Queue a single-page write; the continuation fires when durable.
    @raise Invalid_argument on bad page index or wrong buffer size. *)

val read_page : t -> page:int -> (bytes -> unit) -> unit
(** Queue a single-page read; the continuation receives a copy. *)

val write_track : t -> first_page:int -> bytes -> (unit -> unit) -> unit
(** Whole-track (or shorter) multi-page write at track transfer rate; the
    buffer length must be a multiple of the page size. *)

val read_track : t -> first_page:int -> pages:int -> (bytes -> unit) -> unit

val queue_depth : t -> int
(** Requests accepted but not yet completed. *)

val crash_queue : t -> unit
(** Crash semantics: drop every queued and in-service request without
    applying it — a write that had not completed is not durable.  Media
    contents are untouched.  Use together with {!Mrdb_sim.Sim.clear} so the
    orphaned completion events are discarded too. *)

val busy_until : t -> float

(** {2 Untimed inspection (tests and crash-state capture)} *)

val peek_page : t -> page:int -> bytes option
(** Contents of a page if it has ever been written (copy). *)

val is_written : t -> page:int -> bool

val stats_ops : t -> int
val stats_pages_written : t -> int
val stats_pages_read : t -> int
val stats_busy_us : t -> float
