(** Volatile memory with crash epochs.

    Regular main memory: its contents are lost on a crash.  Rather than
    physically zeroing structures (which would hide use-after-crash bugs),
    each region is stamped with the epoch it was created in; after
    {!Epoch.crash} every access to a stale region raises {!Lost}, so any
    code path that "cheats" by reading volatile state during recovery fails
    loudly in tests. *)

exception Lost of string
(** Raised when a region from a pre-crash epoch is accessed. *)

(** A crash-epoch domain; one per simulated machine. *)
module Epoch : sig
  type t

  val create : unit -> t
  val current : t -> int
  val crash : t -> unit
  (** Advance the epoch, invalidating every region created before. *)

  val crash_count : t -> int
end

type 'a t
(** A volatile cell holding a value of type ['a]. *)

val create : Epoch.t -> 'a -> 'a t
val get : 'a t -> 'a
(** @raise Lost after a crash. *)

val set : 'a t -> 'a -> unit
(** @raise Lost after a crash. *)

val is_live : 'a t -> bool
val name : string -> Epoch.t -> 'a -> 'a t
(** Like [create] but with a label used in the [Lost] message. *)
