lib/hw/volatile.mli:
