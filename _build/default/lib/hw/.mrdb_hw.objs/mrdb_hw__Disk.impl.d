lib/hw/disk.ml: Array Bytes Mrdb_sim Option Printf Queue
