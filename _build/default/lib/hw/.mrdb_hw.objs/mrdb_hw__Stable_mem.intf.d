lib/hw/stable_mem.mli:
