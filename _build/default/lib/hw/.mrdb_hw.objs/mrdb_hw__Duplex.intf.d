lib/hw/duplex.mli: Disk Mrdb_sim
