lib/hw/duplex.ml: Disk
