lib/hw/volatile.ml: Printf
