lib/hw/disk.mli: Mrdb_sim
