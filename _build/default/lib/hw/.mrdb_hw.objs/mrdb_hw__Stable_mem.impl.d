lib/hw/stable_mem.ml: Bytes List Mrdb_util Printf
