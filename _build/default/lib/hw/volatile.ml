exception Lost of string

module Epoch = struct
  type t = { mutable epoch : int }

  let create () = { epoch = 0 }
  let current t = t.epoch
  let crash t = t.epoch <- t.epoch + 1
  let crash_count t = t.epoch
end

type 'a t = {
  domain : Epoch.t;
  born : int;
  label : string;
  mutable value : 'a;
}

let name label domain value =
  { domain; born = Epoch.current domain; label; value }

let create domain value = name "volatile" domain value

let is_live t = t.born = Epoch.current t.domain

let check t =
  if not (is_live t) then
    raise (Lost (Printf.sprintf "%s: volatile data lost in crash" t.label))

let get t =
  check t;
  t.value

let set t v =
  check t;
  t.value <- v
