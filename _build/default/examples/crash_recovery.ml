(* Crash-recovery policy comparison (§2.5 / §3.4): after the same crash,
   measure simulated time until a transaction needing ONE relation can run
   under

   - on-demand partition-level recovery (the paper's design),
   - predeclared relation recovery (method 1),
   - full database reload (the Hagmann-style baseline).

   Partition-level recovery should win by roughly the ratio of database
   size to working-set size.

   Run with: dune exec examples/crash_recovery.exe *)

open Mrdb_core

let build_db () =
  let db = Db.create ~config:Config.small () in
  (* Several relations so the database is much larger than any one
     transaction's working set. *)
  let schema =
    Mrdb_storage.Schema.of_list [ ("k", Mrdb_storage.Schema.Int); ("v", Mrdb_storage.Schema.Str) ]
  in
  for r = 0 to 5 do
    let name = Printf.sprintf "table%d" r in
    Db.create_relation db ~name ~schema;
    Db.with_txn db (fun tx ->
        for i = 1 to 120 do
          ignore
            (Db.insert db tx ~rel:name
               [| Mrdb_storage.Schema.int i;
                  Mrdb_storage.Schema.S (String.make 40 (Char.chr (65 + r)));
               |])
        done)
  done;
  (* Leave a mix of checkpointed and log-only state behind. *)
  ignore (Db.process_checkpoints db);
  Db.with_txn db (fun tx ->
      for i = 200 to 260 do
        ignore
          (Db.insert db tx ~rel:"table0"
             [| Mrdb_storage.Schema.int i; Mrdb_storage.Schema.S "late" |])
      done);
  Db.quiesce db;
  db

let time_first_txn db f =
  let t0 = Mrdb_sim.Sim.now (Db.sim db) in
  f ();
  Mrdb_sim.Sim.now (Db.sim db) -. t0

let () =
  (* On-demand: recover catalogs, then touch one relation. *)
  let db = build_db () in
  Db.crash db;
  let on_demand =
    time_first_txn db (fun () ->
        Db.recover db;
        Db.with_txn db (fun tx -> ignore (Db.scan db tx ~rel:"table0")))
  in
  let resident_at_first_txn = Db.resident_fraction db in

  (* Predeclare: same, but the transaction declares its relation. *)
  let db2 = build_db () in
  Db.crash db2;
  let predeclare =
    time_first_txn db2 (fun () ->
        Db.recover ~mode:Config.Predeclare db2;
        let tx = Db.begin_txn ~declare:[ "table0" ] db2 in
        ignore (Db.scan db2 tx ~rel:"table0");
        Db.commit db2 tx)
  in

  (* Full reload: everything restored before any transaction. *)
  let db3 = build_db () in
  Db.crash db3;
  let full_reload =
    time_first_txn db3 (fun () ->
        Db.recover ~mode:Config.Full_reload db3;
        Db.with_txn db3 (fun tx -> ignore (Db.scan db3 tx ~rel:"table0")))
  in

  Printf.printf "time to first transaction after crash (simulated ms):\n";
  Printf.printf "  on-demand partition-level : %8.2f  (%.0f%% of db resident at that point)\n"
    (on_demand /. 1000.0)
    (resident_at_first_txn *. 100.0);
  Printf.printf "  predeclared relations     : %8.2f\n" (predeclare /. 1000.0);
  Printf.printf "  full database reload      : %8.2f\n" (full_reload /. 1000.0);
  Printf.printf "  partition-level speedup over full reload: %.1fx\n"
    (full_reload /. on_demand);
  if full_reload <= on_demand then begin
    print_endline "unexpected: full reload not slower — check configuration";
    exit 1
  end;
  print_endline "crash_recovery OK"
