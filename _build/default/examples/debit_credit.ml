(* Gray-style debit/credit bank — the paper's canonical §3.2 workload
   ("Gray's notion of a typical debit/credit transaction is one that writes
   approximately four log records").

   Runs a stream of debit/credit transactions, reports log-record volume per
   transaction, checkpoint activity, and verifies the money-conservation
   invariant across a crash.

   Run with: dune exec examples/debit_credit.exe *)

open Mrdb_core

let () =
  let db = Db.create ~config:Config.small () in
  let bank = Workload.Bank.setup db ~accounts:400 ~tellers:8 ~branches:2 () in
  let rng = Mrdb_util.Rng.of_int 2026 in

  let n_txns = 500 in
  let records_before = Mrdb_sim.Trace.count (Db.trace db) "log_records" in
  for _ = 1 to n_txns do
    Workload.Bank.run_debit_credit bank db ~rng
  done;
  Db.quiesce db;
  let records_after = Mrdb_sim.Trace.count (Db.trace db) "log_records" in

  let trace = Db.trace db in
  Printf.printf "debit/credit: %d transactions\n" n_txns;
  Printf.printf "  log records per txn (incl. index maintenance): %.1f\n"
    (float_of_int (records_after - records_before) /. float_of_int n_txns);
  Printf.printf "  checkpoints: %d (update-count triggers: %d, age triggers: %d)\n"
    (Mrdb_sim.Trace.count trace "checkpoints")
    (Mrdb_sim.Trace.count trace "ckpt_req_update_count")
    (Mrdb_sim.Trace.count trace "ckpt_req_age");
  Printf.printf "  log pages written: %d\n"
    (Mrdb_wal.Log_disk.pages_written (Db.log_disk db));

  (* Conservation: debits and credits cancel out in the account total only
     if every transaction was atomic. *)
  let total = Workload.Bank.audit bank db in
  Printf.printf "  account total: %Ld\n" total;

  Db.crash db;
  Db.recover db;
  let total_after = Workload.Bank.audit bank db in
  Printf.printf "  account total after crash+recovery: %Ld (%s)\n" total_after
    (if Int64.equal total total_after then "conserved" else "VIOLATED");
  if not (Int64.equal total total_after) then exit 1;
  print_endline "debit_credit OK"
