examples/media_failure.ml: Config Db Mrdb_archive Mrdb_core Mrdb_sim Mrdb_storage Option Printf Schema
