examples/quickstart.mli:
