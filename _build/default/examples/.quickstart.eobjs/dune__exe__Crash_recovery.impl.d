examples/crash_recovery.ml: Char Config Db Mrdb_core Mrdb_sim Mrdb_storage Printf String
