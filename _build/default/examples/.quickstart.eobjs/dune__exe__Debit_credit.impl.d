examples/debit_credit.ml: Config Db Int64 Mrdb_core Mrdb_sim Mrdb_util Mrdb_wal Printf Workload
