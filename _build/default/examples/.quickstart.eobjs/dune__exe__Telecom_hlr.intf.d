examples/telecom_hlr.mli:
