examples/media_failure.mli:
