examples/quickstart.ml: Catalog Config Db Int64 Mrdb_core Mrdb_sim Mrdb_storage Printf Schema Tuple
