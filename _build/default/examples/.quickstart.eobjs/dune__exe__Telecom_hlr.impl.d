examples/telecom_hlr.ml: Catalog Config Db Mrdb_core Mrdb_sim Mrdb_storage Mrdb_util Mrdb_wal Printf Schema Tuple
