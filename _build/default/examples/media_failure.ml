(* Archive logging and media-failure recovery (§2.6): the log disks are
   duplexed, and an archive tape receives a copy of every log page and
   every checkpoint image — so even losing the entire checkpoint disk in
   the same incident as a crash loses no committed data.

   Run with: dune exec examples/media_failure.exe *)

open Mrdb_storage
open Mrdb_core
module Archive = Mrdb_archive.Archive

let () =
  let config = { Config.small with Config.archive = true } in
  let db = Db.create ~config () in
  let schema = Schema.of_list [ ("k", Schema.Int); ("v", Schema.Str) ] in
  Db.create_relation db ~name:"ledger" ~schema;

  Db.with_txn db (fun tx ->
      for i = 1 to 50 do
        ignore
          (Db.insert db tx ~rel:"ledger"
             [| Schema.int i; Schema.S (Printf.sprintf "entry-%02d" i) |])
      done);
  Db.checkpoint_all db;
  Db.with_txn db (fun tx ->
      for i = 51 to 70 do
        ignore
          (Db.insert db tx ~rel:"ledger"
             [| Schema.int i; Schema.S (Printf.sprintf "late-%02d" i) |])
      done);
  Db.quiesce db;

  let a = Option.get (Db.archiver db) in
  Printf.printf "before the incident: %d rows; %s\n"
    (Db.cardinality db ~rel:"ledger")
    (Archive.stats a);

  (* The incident: power failure AND the checkpoint disk dies. *)
  Db.crash db;
  Db.fail_checkpoint_disk db;
  print_endline "crash + checkpoint-disk media failure ...";

  (* Recovery falls back to the newest archived image of each partition
     and replays the surviving (duplexed) log on top. *)
  Db.recover db;
  let rows = Db.cardinality db ~rel:"ledger" in
  Printf.printf "after recovery from archive: %d rows (media recoveries: %d)\n" rows
    (Mrdb_sim.Trace.count (Db.trace db) "media_recoveries");
  if rows <> 70 then begin
    print_endline "DATA LOST — archive recovery failed";
    exit 1
  end;

  (* The system re-checkpoints onto the replacement disk and keeps going. *)
  Db.with_txn db (fun tx ->
      ignore (Db.insert db tx ~rel:"ledger" [| Schema.int 71; Schema.S "post-incident" |]));
  Db.checkpoint_all db;
  Db.quiesce db;
  Db.crash db;
  Db.recover db;
  Printf.printf "after a further ordinary crash: %d rows\n"
    (Db.cardinality db ~rel:"ledger");
  if Db.cardinality db ~rel:"ledger" <> 71 then exit 1;
  print_endline "media_failure OK"
