(* Quickstart: create a memory-resident database, run transactions against
   an indexed relation, checkpoint, crash the machine, and recover on
   demand.

   Run with: dune exec examples/quickstart.exe *)

open Mrdb_storage
open Mrdb_core

let () =
  (* A database with the paper's recovery architecture: stable log buffer +
     stable log tail, duplexed log disk, checkpoint disk. *)
  let db = Db.create ~config:Config.small () in

  (* DDL: a relation and a T-tree index (the paper's MM-DBMS index). *)
  let schema =
    Schema.of_list
      [ ("id", Schema.Int); ("name", Schema.Str); ("score", Schema.Int) ]
  in
  Db.create_relation db ~name:"players" ~schema;
  Db.create_index db ~rel:"players" ~name:"players_id" ~kind:Catalog.Ttree
    ~key_column:"id";

  (* Transactions: inserts, an update, a delete; strict 2PL underneath,
     REDO into stable memory (instant commit), UNDO in volatile space. *)
  Db.with_txn db (fun tx ->
      for i = 1 to 100 do
        ignore
          (Db.insert db tx ~rel:"players"
             [| Schema.int i; Schema.S (Printf.sprintf "player-%03d" i); Schema.int 0 |])
      done);

  Db.with_txn db (fun tx ->
      match Db.lookup db tx ~rel:"players" ~index:"players_id" (Schema.int 42) with
      | [ (addr, _) ] ->
          ignore
            (Db.update_field db tx ~rel:"players" addr ~column:"score"
               (Schema.int 9000))
      | _ -> assert false);

  (* A transaction that changes its mind: abort rolls everything back. *)
  let tx = Db.begin_txn db in
  ignore
    (Db.insert db tx ~rel:"players"
       [| Schema.int 999; Schema.S "phantom"; Schema.int (-1) |]);
  Db.abort db tx;

  Printf.printf "before crash: %d players, player 42 score = %s\n"
    (Db.cardinality db ~rel:"players")
    (Db.with_txn db (fun tx ->
         match Db.lookup db tx ~rel:"players" ~index:"players_id" (Schema.int 42) with
         | [ (_, tup) ] -> Int64.to_string (match Tuple.field tup 2 with Schema.I v -> v | _ -> 0L)
         | _ -> "?"));

  (* Checkpoint some partitions (normally triggered automatically by update
     count or log-window age). *)
  Db.checkpoint_all db;
  Db.quiesce db;
  Printf.printf "checkpoints taken: %d\n"
    (Mrdb_sim.Trace.count (Db.trace db) "checkpoints");

  (* Power failure: all volatile memory is gone.  The stable log buffer,
     stable log tail, log disk and checkpoint disk survive. *)
  Db.crash db;
  assert (Db.is_crashed db);

  (* Recovery phase 1: catalogs restored from the well-known stable area;
     transaction processing may resume immediately. *)
  Db.recover db;
  Printf.printf "after recovery: resident fraction before first touch = %.2f\n"
    (Db.resident_fraction db);

  (* First transaction: the partitions it needs are restored on demand. *)
  Db.with_txn db (fun tx ->
      match Db.lookup db tx ~rel:"players" ~index:"players_id" (Schema.int 42) with
      | [ (_, tup) ] ->
          Printf.printf "player 42 after crash: %s (score %s)\n"
            (match Tuple.field tup 1 with Schema.S s -> s | _ -> "?")
            (match Tuple.field tup 2 with Schema.I v -> Int64.to_string v | _ -> "?")
      | _ -> print_endline "player 42 lost — recovery bug!");

  (* Background sweep restores the rest at low priority. *)
  Db.recover_everything db;
  Printf.printf "fully resident: %.2f; players after recovery: %d\n"
    (Db.resident_fraction db)
    (Db.cardinality db ~rel:"players");
  print_endline "quickstart OK"
