(* Telecom home-location-register: the classic memory-resident database
   motivation — single-record, update-intensive transactions ("one log
   record over only hundreds of instructions", §3.2) over a linear-hash
   index, with live checkpoint pressure from the finite log window.

   Run with: dune exec examples/telecom_hlr.exe *)

open Mrdb_storage
open Mrdb_core

let () =
  let config = { Config.small with Config.n_update = 32 } in
  let db = Db.create ~config () in

  let schema =
    Schema.of_list
      [ ("msisdn", Schema.Str); ("cell", Schema.Int); ("forward_to", Schema.Str) ]
  in
  Db.create_relation db ~name:"hlr" ~schema;
  Db.create_index db ~rel:"hlr" ~name:"hlr_msisdn" ~kind:Catalog.Lhash
    ~key_column:"msisdn";

  let subscribers = 300 in
  let msisdn i = Printf.sprintf "+1555%07d" i in
  Db.with_txn db (fun tx ->
      for i = 1 to subscribers do
        ignore
          (Db.insert db tx ~rel:"hlr"
             [| Schema.S (msisdn i); Schema.int 0; Schema.S "" |])
      done);

  (* Location updates: a skewed stream (commuters bounce between a few hot
     cells) of single-field updates — the update-intensive extreme. *)
  let rng = Mrdb_util.Rng.of_int 7 in
  let updates = 2000 in
  for _ = 1 to updates do
    let sub = 1 + Mrdb_util.Rng.zipf rng ~n:subscribers ~theta:1.2 in
    Db.with_txn db (fun tx ->
        match Db.lookup db tx ~rel:"hlr" ~index:"hlr_msisdn" (Schema.S (msisdn sub)) with
        | [ (addr, _) ] ->
            ignore
              (Db.update_field db tx ~rel:"hlr" addr ~column:"cell"
                 (Schema.int (Mrdb_util.Rng.int rng 500)))
        | _ -> assert false)
  done;
  Db.quiesce db;

  let trace = Db.trace db in
  Printf.printf "HLR: %d subscribers, %d location updates\n" subscribers updates;
  Printf.printf "  checkpoints: %d (by update count: %d, by age: %d)\n"
    (Mrdb_sim.Trace.count trace "checkpoints")
    (Mrdb_sim.Trace.count trace "ckpt_req_update_count")
    (Mrdb_sim.Trace.count trace "ckpt_req_age");
  Printf.printf "  log window pressure: %.2f\n"
    (Mrdb_wal.Slt.window_pressure (Db.slt db));

  (* A call-routing lookup must survive a switch reboot. *)
  let routed_before =
    Db.with_txn db (fun tx ->
        match Db.lookup db tx ~rel:"hlr" ~index:"hlr_msisdn" (Schema.S (msisdn 1)) with
        | [ (_, tup) ] -> Schema.to_int (Tuple.field tup 1)
        | _ -> -1)
  in
  Db.crash db;
  Db.recover db;
  let routed_after =
    Db.with_txn db (fun tx ->
        match Db.lookup db tx ~rel:"hlr" ~index:"hlr_msisdn" (Schema.S (msisdn 1)) with
        | [ (_, tup) ] -> Schema.to_int (Tuple.field tup 1)
        | _ -> -1)
  in
  Printf.printf "  subscriber 1 cell before/after reboot: %d / %d (%s)\n"
    routed_before routed_after
    (if routed_before = routed_after then "consistent" else "LOST");
  if routed_before <> routed_after then exit 1;
  print_endline "telecom_hlr OK"
